//! Deadline watchdog, multi-tenant admission, and overload shedding in
//! front of the supervisor.
//!
//! The [`Supervisor`](crate::serve::Supervisor) keeps individual batches
//! alive through faults; this module keeps the *service* alive through
//! load. A [`Gateway`] owns a bounded admission queue driven by a virtual
//! clock (the same simulated-µs timeline the DES prices batches in) and
//! applies a shed/degrade ladder ordered by queue pressure:
//!
//! 1. **Quota** — with [`TenancyConfig`] enabled, each tenant spends one
//!    token per submission from a token bucket refilled at
//!    [`TenantQuota::rate_per_s`] on the virtual clock; an empty bucket
//!    sheds the arrival ([`ShedCause::QuotaExceeded`]) before it can take
//!    queue space from other tenants.
//! 2. **Deadline watchdog** — a queued request that has waited, *or
//!    provably will wait* (the server is busy until `busy_until_us`), at
//!    least [`OverloadConfig::deadline_us`] is shed
//!    ([`ShedCause::DeadlineExpired`]): serving it would burn capacity on
//!    an answer nobody is waiting for, which is how overload spirals. The
//!    bound is inclusive — a wait of exactly the deadline is already late.
//! 3. **Reduced fanout** — at queue depth ≥
//!    [`OverloadConfig::degrade_watermark`], batches are sampled with
//!    [`OverloadConfig::reduced_fanout`] instead of the configured fanout,
//!    shrinking per-batch preprocessing and GPU work while the queue
//!    drains ([`DegradeAction::ReducedFanout`]).
//! 4. **Halved batch** — at depth ≥ [`OverloadConfig::halve_watermark`],
//!    batches are additionally cut in half. When both rungs engage the
//!    completion reports the composed
//!    [`DegradeAction::HalvedBatchReducedFanout`], never just one of them.
//! 5. **Reject newest** — when the queue is full, the arriving request is
//!    refused outright ([`ShedCause::QueueFull`]); the queue can never
//!    grow past [`OverloadConfig::queue_capacity`].
//!
//! With tenancy enabled, admitted requests are dequeued by deficit round
//! robin: each tenant accrues [`TenancyConfig::quantum`] deficit (in batch
//! vertices) per round-robin visit and serves from its FIFO while the
//! deficit covers the head's cost, so a flooding tenant cannot starve the
//! others regardless of arrival interleaving. Without tenancy the gateway
//! is the single global FIFO it always was.
//!
//! Every resolution — served, degraded, or shed — produces exactly one
//! [`Completion`] and one structured telemetry event on the `gateway`
//! track, so an exported trace reconciles 1:1 against the outcomes the
//! caller saw. With tenancy enabled, labeled per-tenant
//! `gt_gateway_tenant_{submitted,served,shed,degraded}_total{tenant="t"}`
//! series break the same stream down by tenant.
//!
//! Service time for a batch is its overlapped end-to-end latency
//! ([`BatchReport::e2e_us`]) plus any injected
//! [`gt_sim::FaultKind::ServeDelay`] stall and any retry backoff the
//! supervisor paid — so a fault plan with a sustained stall window is
//! exactly how tests (and capacity planners) push the gateway into
//! overload, deterministically. When serving caches are enabled on the
//! supervisor ([`Supervisor::enable_caches`]), the preprocessing µs a
//! cache hit saved are subtracted from the critical path before the
//! overlap max — warm caches raise effective capacity.

use crate::data::GraphData;
use crate::framework::{BatchOutcome, BatchReport, DegradeAction, ShedCause};
use crate::serve::Supervisor;
use gt_graph::VId;
use std::collections::VecDeque;

/// Admission-control policy of the gateway.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Hard bound on queued requests; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// A request that has waited — or provably will wait — at least this
    /// long when it would start is shed instead of served (∞ = no
    /// deadline). The bound is inclusive.
    pub deadline_us: f64,
    /// Queue depth at which batches are served with reduced fanout.
    pub degrade_watermark: usize,
    /// Queue depth at which batches are additionally halved.
    pub halve_watermark: usize,
    /// Fanout used while degraded (clamped to the configured fanout).
    pub reduced_fanout: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            queue_capacity: 8,
            deadline_us: f64::INFINITY,
            degrade_watermark: 4,
            halve_watermark: 6,
            reduced_fanout: 2,
        }
    }
}

/// Token-bucket admission quota for one tenant.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Sustained admission rate, requests per virtual second.
    pub rate_per_s: f64,
    /// Bucket capacity: how many requests may burst above the rate.
    pub burst: f64,
}

impl TenantQuota {
    /// A quota admitting `rate_per_s` sustained with `burst` headroom.
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        TenantQuota { rate_per_s, burst }
    }

    /// No quota: the bucket never empties.
    pub fn unlimited() -> Self {
        TenantQuota {
            rate_per_s: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }
}

/// Multi-tenant admission policy: one quota per tenant plus the deficit
/// round-robin quantum (in batch vertices) used to share the server.
#[derive(Debug, Clone)]
pub struct TenancyConfig {
    /// Per-tenant token-bucket quotas; the vector length fixes the tenant
    /// count and tenant ids are indices into it.
    pub quotas: Vec<TenantQuota>,
    /// Deficit round-robin quantum, in batch vertices, accrued per visit.
    pub quantum: usize,
}

/// One admitted request waiting for service.
#[derive(Debug)]
struct Pending {
    request_index: usize,
    tenant: usize,
    arrival_us: f64,
    batch: Vec<VId>,
}

/// Per-tenant admission state: FIFO, token bucket, and DRR deficit.
#[derive(Debug)]
struct Tenant {
    queue: VecDeque<Pending>,
    tokens: f64,
    refilled_us: f64,
    deficit: usize,
}

impl Tenant {
    fn new(tokens: f64) -> Self {
        Tenant {
            queue: VecDeque::new(),
            tokens,
            refilled_us: 0.0,
            deficit: 0,
        }
    }
}

/// How one submitted request resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Submission index of the request (0-based, in arrival order).
    pub request_index: usize,
    /// Tenant the request was submitted for (0 without tenancy).
    pub tenant: usize,
    /// The resolution: a served outcome, or [`BatchOutcome::Shed`].
    pub outcome: BatchOutcome,
    /// Virtual µs the request waited in the admission queue.
    pub queued_us: f64,
    /// Virtual µs of service (0 for shed requests).
    pub service_us: f64,
    /// Virtual timestamp at which the request left the system.
    pub done_us: f64,
}

/// Bounded admission queue + deadline watchdog + shed/degrade ladder in
/// front of a [`Supervisor`]. See the module docs for the ladder.
pub struct Gateway {
    /// The supervised trainer behind the queue.
    pub supervisor: Supervisor,
    /// Admission-control policy.
    pub config: OverloadConfig,
    tenancy: Option<TenancyConfig>,
    tenants: Vec<Tenant>,
    rr_cursor: usize,
    busy_until_us: f64,
    last_arrival_us: f64,
    submitted: usize,
}

impl Gateway {
    /// Put `supervisor` behind an admission queue with `config`.
    pub fn new(supervisor: Supervisor, config: OverloadConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        Gateway {
            supervisor,
            config,
            tenancy: None,
            tenants: vec![Tenant::new(f64::INFINITY)],
            rr_cursor: 0,
            busy_until_us: 0.0,
            last_arrival_us: 0.0,
            submitted: 0,
        }
    }

    /// Switch the gateway to multi-tenant admission. Must be called before
    /// the first submission; tenant ids are indices into `cfg.quotas`.
    pub fn enable_tenancy(&mut self, cfg: TenancyConfig) {
        assert_eq!(
            self.submitted, 0,
            "tenancy must be configured before any submission"
        );
        assert!(!cfg.quotas.is_empty(), "tenancy needs at least one tenant");
        assert!(cfg.quantum > 0, "DRR quantum must be positive");
        self.tenants = cfg.quotas.iter().map(|q| Tenant::new(q.burst)).collect();
        self.rr_cursor = 0;
        self.tenancy = Some(cfg);
    }

    /// Requests currently waiting (never exceeds the configured capacity).
    pub fn queue_depth(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Submit a single-tenant request (tenant 0); see [`Gateway::submit_from`].
    pub fn submit(&mut self, data: &GraphData, arrival_us: f64, batch: &[VId]) -> Vec<Completion> {
        self.submit_from(data, arrival_us, 0, batch)
    }

    /// Submit a request for `tenant` arriving at `arrival_us` (arrivals
    /// must be monotone across all tenants). The virtual clock advances to
    /// the arrival: every queued request whose service completes by then is
    /// processed first, and the resulting completions — plus this request's
    /// own immediate shed, if quota, capacity, or the deadline refuse it —
    /// are returned in resolution order.
    pub fn submit_from(
        &mut self,
        data: &GraphData,
        arrival_us: f64,
        tenant: usize,
        batch: &[VId],
    ) -> Vec<Completion> {
        assert!(
            arrival_us >= self.last_arrival_us,
            "arrivals must be monotone: {arrival_us} < {}",
            self.last_arrival_us
        );
        assert!(
            tenant < self.tenants.len(),
            "tenant {tenant} out of range (0..{})",
            self.tenants.len()
        );
        self.last_arrival_us = arrival_us;
        let request_index = self.submitted;
        self.submitted += 1;
        let telemetry = self.supervisor.trainer.telemetry.clone();
        if self.tenancy.is_some() {
            telemetry
                .counter_with(
                    "gt_gateway_tenant_submitted_total",
                    "Requests submitted, by tenant",
                    &[("tenant", &tenant.to_string())],
                )
                .inc();
        }

        let mut done = self.pump(data, arrival_us);

        if let Some(cfg) = &self.tenancy {
            // Token-bucket quota, refilled on the virtual arrival clock.
            let quota = &cfg.quotas[tenant];
            let t = &mut self.tenants[tenant];
            let elapsed_s = (arrival_us - t.refilled_us) / 1e6;
            t.tokens = quota.burst.min(t.tokens + elapsed_s * quota.rate_per_s);
            t.refilled_us = arrival_us;
            if t.tokens < 1.0 {
                done.push(self.shed_arrival(
                    request_index,
                    tenant,
                    arrival_us,
                    ShedCause::QuotaExceeded,
                ));
                self.update_depth_gauge();
                return done;
            }
            t.tokens -= 1.0;
        }

        if self.queue_depth() >= self.config.queue_capacity {
            done.push(self.shed_arrival(request_index, tenant, arrival_us, ShedCause::QueueFull));
        } else if self.busy_until_us.max(arrival_us) - arrival_us >= self.config.deadline_us {
            // Predicted lateness: the server is provably busy past this
            // request's deadline before it could even start — shedding now
            // is strictly better than queueing a guaranteed-late answer.
            done.push(self.shed_arrival(
                request_index,
                tenant,
                arrival_us,
                ShedCause::DeadlineExpired,
            ));
        } else {
            self.tenants[tenant].queue.push_back(Pending {
                request_index,
                tenant,
                arrival_us,
                batch: batch.to_vec(),
            });
        }
        self.update_depth_gauge();
        done
    }

    /// Run the virtual clock forward until the queue is empty and return
    /// the remaining completions.
    pub fn drain(&mut self, data: &GraphData) -> Vec<Completion> {
        let done = self.pump(data, f64::INFINITY);
        self.supervisor
            .trainer
            .telemetry
            .gauge("gt_gateway_queue_depth", "Admission-queue occupancy")
            .set(0.0);
        done
    }

    fn update_depth_gauge(&self) {
        self.supervisor
            .trainer
            .telemetry
            .gauge("gt_gateway_queue_depth", "Admission-queue occupancy")
            .set(self.queue_depth() as f64);
    }

    /// Shed an arriving request before it is queued (quota, capacity, or
    /// predicted lateness): one counter bump, one event, one completion.
    fn shed_arrival(
        &mut self,
        request_index: usize,
        tenant: usize,
        arrival_us: f64,
        cause: ShedCause,
    ) -> Completion {
        let telemetry = self.supervisor.trainer.telemetry.clone();
        telemetry
            .counter("gt_gateway_shed_total", "Requests shed by the gateway")
            .inc();
        if self.tenancy.is_some() {
            telemetry
                .counter_with(
                    "gt_gateway_tenant_shed_total",
                    "Requests shed, by tenant",
                    &[("tenant", &tenant.to_string())],
                )
                .inc();
        }
        telemetry.event(
            "gateway",
            "shed",
            &[
                ("request", &request_index),
                ("cause", &cause.label()),
                ("queue_depth", &self.queue_depth()),
            ],
        );
        let outcome = BatchOutcome::Shed { cause };
        let traced_tenant = self.tenancy.is_some().then_some(tenant);
        if let Some(tracer) = self.supervisor.tracer.as_mut() {
            tracer.record_shed(
                request_index,
                &outcome,
                traced_tenant,
                arrival_us,
                arrival_us,
            );
        }
        Completion {
            request_index,
            tenant,
            outcome,
            queued_us: 0.0,
            service_us: 0.0,
            done_us: arrival_us,
        }
    }

    /// Pick the tenant whose queue head is served next. Without tenancy
    /// this is the global FIFO; with tenancy it is deficit round robin:
    /// each visit to a nonempty tenant accrues one quantum, and a tenant
    /// holds the cursor while its deficit covers its head's cost. Emptied
    /// tenants forfeit their deficit. Re-selection without an intervening
    /// serve is idempotent (an affordable head returns before any accrual),
    /// so pausing the pump mid-backlog cannot skew the schedule.
    fn select_tenant(&mut self) -> Option<usize> {
        if self.tenancy.is_none() {
            return (!self.tenants[0].queue.is_empty()).then_some(0);
        }
        if self.queue_depth() == 0 {
            return None;
        }
        let quantum = self.tenancy.as_ref().expect("tenancy checked").quantum;
        let n = self.tenants.len();
        loop {
            let t = self.rr_cursor;
            let Some(front) = self.tenants[t].queue.front() else {
                self.tenants[t].deficit = 0;
                self.rr_cursor = (t + 1) % n;
                continue;
            };
            let cost = front.batch.len().max(1);
            if self.tenants[t].deficit >= cost {
                return Some(t);
            }
            self.tenants[t].deficit += quantum;
            if self.tenants[t].deficit >= cost {
                return Some(t);
            }
            self.rr_cursor = (t + 1) % n;
        }
    }

    /// DRR bookkeeping after tenant `t`'s head was removed. Serving charges
    /// the head's cost against the deficit; shedding is free (the server
    /// was never occupied). The cursor stays on `t` while it can still
    /// afford its next head, otherwise moves on.
    fn after_dequeue(&mut self, t: usize, served_cost: Option<usize>) {
        if self.tenancy.is_none() {
            return;
        }
        let n = self.tenants.len();
        let ten = &mut self.tenants[t];
        if let Some(cost) = served_cost {
            ten.deficit = ten.deficit.saturating_sub(cost);
        }
        match ten.queue.front() {
            None => {
                ten.deficit = 0;
                self.rr_cursor = (t + 1) % n;
            }
            Some(next) if ten.deficit < next.batch.len().max(1) => {
                self.rr_cursor = (t + 1) % n;
            }
            Some(_) => {}
        }
    }

    /// Process queued requests whose service starts by `now_us`. Fronts
    /// that are already (or provably) past the deadline are shed even
    /// beyond `now_us` — their lateness is a fact the moment
    /// `busy_until_us` passes the bound, not something to wait for.
    fn pump(&mut self, data: &GraphData, now_us: f64) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = self.select_tenant() {
            let front = self.tenants[t].queue.front().expect("selected nonempty");
            let start_us = self.busy_until_us.max(front.arrival_us);
            let queued_us = start_us - front.arrival_us;
            let late = queued_us >= self.config.deadline_us;
            if start_us > now_us && !late {
                break;
            }
            let p = self.tenants[t].queue.pop_front().expect("front checked");
            let telemetry = self.supervisor.trainer.telemetry.clone();
            telemetry
                .histogram_us("gt_gateway_queue_wait_us", "Admission-queue wait, µs")
                .observe(queued_us);
            if late {
                // Deadline watchdog: the answer is already too late.
                self.after_dequeue(t, None);
                let cause = ShedCause::DeadlineExpired;
                telemetry
                    .counter("gt_gateway_shed_total", "Requests shed by the gateway")
                    .inc();
                if self.tenancy.is_some() {
                    telemetry
                        .counter_with(
                            "gt_gateway_tenant_shed_total",
                            "Requests shed, by tenant",
                            &[("tenant", &t.to_string())],
                        )
                        .inc();
                }
                telemetry.event(
                    "gateway",
                    "shed",
                    &[
                        ("request", &p.request_index),
                        ("cause", &cause.label()),
                        ("queued_us", &format!("{queued_us:.0}")),
                    ],
                );
                let outcome = BatchOutcome::Shed { cause };
                let traced_tenant = self.tenancy.is_some().then_some(p.tenant);
                if let Some(tracer) = self.supervisor.tracer.as_mut() {
                    tracer.record_shed(
                        p.request_index,
                        &outcome,
                        traced_tenant,
                        p.arrival_us,
                        start_us,
                    );
                }
                out.push(Completion {
                    request_index: p.request_index,
                    tenant: p.tenant,
                    outcome,
                    queued_us,
                    service_us: 0.0,
                    done_us: start_us,
                });
                continue; // the server was never occupied
            }
            let cost = p.batch.len().max(1);
            let depth = self.queue_depth();
            let (outcome, service_us) = self.serve_one(data, &p, depth, start_us);
            self.busy_until_us = start_us + service_us;
            self.after_dequeue(t, Some(cost));
            if self.tenancy.is_some() {
                telemetry
                    .counter_with(
                        "gt_gateway_tenant_served_total",
                        "Requests served, by tenant",
                        &[("tenant", &t.to_string())],
                    )
                    .inc();
                if matches!(outcome, BatchOutcome::Degraded { .. }) {
                    telemetry
                        .counter_with(
                            "gt_gateway_tenant_degraded_total",
                            "Requests served degraded, by tenant",
                            &[("tenant", &t.to_string())],
                        )
                        .inc();
                }
            }
            telemetry.event(
                "gateway",
                "served",
                &[
                    ("request", &p.request_index),
                    ("outcome", &outcome.label()),
                    ("queue_depth", &depth),
                ],
            );
            out.push(Completion {
                request_index: p.request_index,
                tenant: p.tenant,
                outcome,
                queued_us,
                service_us,
                done_us: start_us + service_us,
            });
        }
        out
    }

    /// Serve one admitted request, applying the degrade ladder for the
    /// current queue `depth`, and price its service time. `start_us` is
    /// when service begins on the virtual clock (≥ arrival).
    fn serve_one(
        &mut self,
        data: &GraphData,
        p: &Pending,
        depth: usize,
        start_us: f64,
    ) -> (BatchOutcome, f64) {
        let telemetry = self.supervisor.trainer.telemetry.clone();
        let batch_index = self.supervisor.batches_served();
        // Injected serving stalls stretch the virtual service time; they
        // never reach the trainer (see ActiveFaults::des_relevant), so the
        // numerics stay on the fault-free path.
        let stall_us = if self.supervisor.plan.is_empty() {
            0.0
        } else {
            self.supervisor
                .plan
                .active(batch_index, 0)
                .serve_delay_us()
                .unwrap_or(0.0)
        };

        let mut batch: Vec<VId> = p.batch.clone();
        let mut action: Option<DegradeAction> = None;
        if depth >= self.config.halve_watermark && batch.len() > 1 {
            let from = batch.len();
            let to = (from / 2).max(1);
            batch.truncate(to);
            action = Some(DegradeAction::HalvedBatch { from, to });
        }
        let mut restore_fanout: Option<usize> = None;
        if depth >= self.config.degrade_watermark {
            let from = self.supervisor.trainer.sampler.fanout;
            let to = self.config.reduced_fanout.min(from);
            if to < from {
                self.supervisor.trainer.sampler.fanout = to;
                restore_fanout = Some(from);
                // Both rungs engaged must be reported as both rungs: the
                // composed variant, not whichever fired first.
                action = Some(match action.take() {
                    Some(DegradeAction::HalvedBatch { from: bf, to: bt }) => {
                        DegradeAction::HalvedBatchReducedFanout {
                            from: bf,
                            to: bt,
                            fanout_from: from,
                            fanout_to: to,
                        }
                    }
                    _ => DegradeAction::ReducedFanout { from, to },
                });
            }
        }
        if let Some(a) = &action {
            telemetry
                .counter(
                    "gt_gateway_degraded_total",
                    "Requests served degraded under load",
                )
                .inc();
            telemetry.event(
                "gateway",
                "degrade",
                &[
                    ("request", &p.request_index),
                    ("queue_depth", &depth),
                    (
                        "action",
                        &match a {
                            DegradeAction::HalvedBatch { .. } => "halved-batch",
                            DegradeAction::ReducedFanout { .. } => "reduced-fanout",
                            DegradeAction::HalvedBatchReducedFanout { .. } => {
                                "halved-batch+reduced-fanout"
                            }
                            DegradeAction::SerializedPrepro => "serialized-prepro",
                        },
                    ),
                ],
            );
        }

        let traced_tenant = self.tenancy.is_some().then_some(p.tenant);
        if let Some(tracer) = self.supervisor.tracer.as_mut() {
            tracer.begin_request(p.request_index, traced_tenant, p.arrival_us, start_us);
        }
        let backoff_before = self.supervisor.backoff_paid_us;
        // A durable supervisor journals through the gateway too, so flight
        // dumps reconcile against the write-ahead outcome stream. Crash
        // faults are not routed through the gateway (drive `serve_durable`
        // directly to exercise them); an injected crash here is a test
        // configuration error, not a servable state.
        let report: BatchReport = if self.supervisor.is_durable() {
            self.supervisor
                .serve_durable(data, &batch)
                .expect("crash faults must not be injected behind the gateway")
        } else {
            self.supervisor.serve_batch(data, &batch)
        };
        if let Some(fanout) = restore_fanout {
            self.supervisor.trainer.sampler.fanout = fanout;
        }
        let backoff_us = self.supervisor.backoff_paid_us - backoff_before;
        // Cache hits shave preprocessing off the critical path before the
        // prepro/GPU overlap max; with caches disabled saved is 0 and this
        // is exactly `e2e_us(true)`.
        let saved_us = self.supervisor.cache_saved_us();
        let service_us = (report.prepro_us() - saved_us)
            .max(0.0)
            .max(report.gpu_us())
            + stall_us
            + backoff_us;

        // A gateway degradation outranks a clean supervisor outcome in the
        // report (the caller got less than it asked for); a supervisor
        // degradation or quarantine is more severe and wins.
        let outcome = match (report.outcome, action) {
            (BatchOutcome::Succeeded, Some(a)) => BatchOutcome::Degraded {
                action: a,
                retries: 0,
            },
            (BatchOutcome::Recovered { retries }, Some(a)) => {
                BatchOutcome::Degraded { action: a, retries }
            }
            (o, _) => o,
        };
        (outcome, service_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::serve::Supervisor;
    use crate::trainer::{GraphTensor, GtVariant};
    use gt_sample::SamplerConfig;
    use gt_sim::{FaultPlan, SystemSpec};

    fn data() -> GraphData {
        GraphData::synthetic(300, 3000, 16, 4, 3)
    }

    fn supervisor(plan: FaultPlan) -> Supervisor {
        let mut t = GraphTensor::new(
            GtVariant::Dynamic,
            ModelConfig::gcn(2, 16, 4),
            SystemSpec::tiny(),
        );
        t.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 11,
            ..Default::default()
        };
        t.telemetry = gt_telemetry::Telemetry::recording();
        Supervisor::new(t, plan)
    }

    fn batches(n: usize) -> Vec<Vec<VId>> {
        (0..n)
            .map(|i| {
                ((i * 8) as VId..(i * 8 + 8) as VId)
                    .map(|v| v % 300)
                    .collect()
            })
            .collect()
    }

    /// With arrivals far slower than service, the gateway is a pass-through:
    /// everything succeeds, nothing is shed or degraded.
    #[test]
    fn underload_is_a_passthrough() {
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), OverloadConfig::default());
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(6).iter().enumerate() {
            all.extend(g.submit(&d, i as f64 * 1e9, b));
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|c| c.outcome == BatchOutcome::Succeeded));
        assert!(all.iter().all(|c| c.queued_us == 0.0));
        assert!(all.iter().all(|c| c.tenant == 0));
    }

    /// A sustained injected stall makes service far slower than arrivals:
    /// the queue must stay bounded by shedding, the ladder must degrade,
    /// and each completion must have exactly one matching gateway event.
    #[test]
    fn overload_sheds_and_degrades_with_bounded_queue() {
        let plan = FaultPlan::new(7).with_serve_delay_window(50_000.0, 0, None);
        let cfg = OverloadConfig {
            queue_capacity: 4,
            deadline_us: f64::INFINITY,
            degrade_watermark: 2,
            halve_watermark: 3,
            reduced_fanout: 2,
        };
        let mut g = Gateway::new(supervisor(plan), cfg);
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(24).iter().enumerate() {
            // Arrivals every 1 000 µs vs ≥50 000 µs of service: hard overload.
            all.extend(g.submit(&d, i as f64 * 1000.0, b));
            assert!(g.queue_depth() <= 4, "queue overflowed");
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 24, "every request must resolve exactly once");
        let shed = all
            .iter()
            .filter(|c| matches!(c.outcome, BatchOutcome::Shed { .. }))
            .count();
        let degraded = all
            .iter()
            .filter(|c| matches!(c.outcome, BatchOutcome::Degraded { .. }))
            .count();
        assert!(shed > 0, "hard overload must shed");
        assert!(degraded > 0, "ladder must degrade under pressure");

        // Telemetry ↔ outcome reconciliation: one gateway event per
        // completion, with matching cause/outcome labels.
        let events = g.supervisor.trainer.telemetry.events();
        let resolution_events: Vec<_> = events
            .iter()
            .filter(|e| e.track == "gateway" && (e.name == "shed" || e.name == "served"))
            .collect();
        assert_eq!(resolution_events.len(), all.len());
        for c in &all {
            let idx = c.request_index.to_string();
            let ev = resolution_events
                .iter()
                .find(|e| e.args.iter().any(|(k, v)| k == "request" && *v == idx))
                .unwrap_or_else(|| panic!("no event for request {idx}"));
            match c.outcome {
                BatchOutcome::Shed { cause } => {
                    assert_eq!(ev.name, "shed");
                    assert!(ev
                        .args
                        .iter()
                        .any(|(k, v)| k == "cause" && v == cause.label()));
                }
                o => {
                    assert_eq!(ev.name, "served");
                    assert!(ev
                        .args
                        .iter()
                        .any(|(k, v)| k == "outcome" && v == o.label()));
                }
            }
        }
    }

    /// When both the halve and the fanout rungs engage, the completion
    /// must report the composed action — not just whichever fired first —
    /// and the degrade event must carry the composed label.
    #[test]
    fn composed_degradation_reports_both_rungs() {
        let plan = FaultPlan::new(7).with_serve_delay_window(50_000.0, 0, None);
        let cfg = OverloadConfig {
            queue_capacity: 6,
            deadline_us: f64::INFINITY,
            degrade_watermark: 2,
            halve_watermark: 3,
            reduced_fanout: 2,
        };
        let mut g = Gateway::new(supervisor(plan), cfg);
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(16).iter().enumerate() {
            all.extend(g.submit(&d, i as f64 * 1000.0, b));
        }
        all.extend(g.drain(&d));
        let composed: Vec<&Completion> = all
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome,
                    BatchOutcome::Degraded {
                        action: DegradeAction::HalvedBatchReducedFanout { .. },
                        ..
                    }
                )
            })
            .collect();
        assert!(
            !composed.is_empty(),
            "deep queue must compose both degrade rungs"
        );
        for c in &composed {
            let BatchOutcome::Degraded {
                action:
                    DegradeAction::HalvedBatchReducedFanout {
                        from,
                        to,
                        fanout_from,
                        fanout_to,
                    },
                ..
            } = c.outcome
            else {
                unreachable!("filtered above");
            };
            assert!(to < from, "batch must actually shrink");
            assert!(fanout_to < fanout_from, "fanout must actually shrink");
        }
        // Each composed completion has a degrade event with the composed label.
        let events = g.supervisor.trainer.telemetry.events();
        for c in &composed {
            let idx = c.request_index.to_string();
            assert!(
                events.iter().any(|e| {
                    e.track == "gateway"
                        && e.name == "degrade"
                        && e.args.iter().any(|(k, v)| k == "request" && *v == idx)
                        && e.args
                            .iter()
                            .any(|(k, v)| k == "action" && v == "halved-batch+reduced-fanout")
                }),
                "no composed degrade event for request {idx}"
            );
        }
    }

    /// The watchdog sheds requests whose queue wait blows the deadline.
    #[test]
    fn deadline_watchdog_sheds_stale_requests() {
        let plan = FaultPlan::new(3).with_serve_delay_window(100_000.0, 0, None);
        let cfg = OverloadConfig {
            queue_capacity: 16,
            deadline_us: 150_000.0,
            degrade_watermark: usize::MAX,
            halve_watermark: usize::MAX,
            reduced_fanout: 2,
        };
        let mut g = Gateway::new(supervisor(plan), cfg);
        let d = data();
        let mut all = Vec::new();
        for (i, b) in batches(8).iter().enumerate() {
            all.extend(g.submit(&d, i as f64 * 10.0, b));
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 8);
        let expired = all
            .iter()
            .filter(|c| {
                c.outcome
                    == BatchOutcome::Shed {
                        cause: ShedCause::DeadlineExpired,
                    }
            })
            .count();
        assert!(expired > 0, "no deadline sheds under a 100ms/batch stall");
        // Early requests (short waits) are still served.
        assert!(all.iter().any(|c| c.outcome.trained()));
        // Shed-by-deadline requests never occupied the server.
        for c in &all {
            if matches!(c.outcome, BatchOutcome::Shed { .. }) {
                assert_eq!(c.service_us, 0.0);
            }
        }
    }

    /// Regression for the off-by-one at the deadline boundary: a wait of
    /// *exactly* the deadline is late (inclusive bound), and a provably
    /// late arrival is shed immediately instead of queueing. One µs of
    /// headroom and the same request is served.
    #[test]
    fn deadline_boundary_is_inclusive() {
        let d = data();
        // Probe the exact virtual service time of the first batch.
        let service = {
            let mut g = Gateway::new(supervisor(FaultPlan::new(0)), OverloadConfig::default());
            let mut c = g.submit(&d, 0.0, &batches(1)[0]);
            c.extend(g.drain(&d));
            assert_eq!(c.len(), 1);
            c[0].done_us
        };
        assert!(service > 0.0);

        let cfg = OverloadConfig {
            queue_capacity: 16,
            deadline_us: service,
            degrade_watermark: usize::MAX,
            halve_watermark: usize::MAX,
            reduced_fanout: 2,
        };
        // Request 1 arrives while request 0 occupies the server for exactly
        // `service` µs: its wait would be exactly the deadline — shed.
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), cfg.clone());
        let mut all = g.submit(&d, 0.0, &batches(2)[0]);
        all.extend(g.submit(&d, 0.0, &batches(2)[1]));
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 2);
        assert!(all[0].outcome.trained());
        assert_eq!(
            all[1].outcome,
            BatchOutcome::Shed {
                cause: ShedCause::DeadlineExpired
            },
            "a wait of exactly the deadline must shed (inclusive bound)"
        );
        assert_eq!(
            all[1].done_us, 0.0,
            "predicted-late sheds resolve on arrival"
        );

        // With one µs of headroom the same request is served after queueing
        // for the full service time.
        let cfg2 = OverloadConfig {
            deadline_us: service + 1.0,
            ..cfg
        };
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), cfg2);
        let mut all = g.submit(&d, 0.0, &batches(2)[0]);
        all.extend(g.submit(&d, 0.0, &batches(2)[1]));
        all.extend(g.drain(&d));
        assert_eq!(all.len(), 2);
        assert!(
            all[1].outcome.trained(),
            "1µs under the deadline must serve"
        );
        assert_eq!(all[1].queued_us, service);
    }

    /// Tenancy: token buckets shed a tenant that exceeds its quota, and
    /// deficit round robin keeps the remaining tenants' service balanced.
    #[test]
    fn tenant_quotas_and_fair_queue() {
        let plan = FaultPlan::new(5).with_serve_delay_window(40_000.0, 0, None);
        let cfg = OverloadConfig {
            queue_capacity: 24,
            deadline_us: f64::INFINITY,
            degrade_watermark: usize::MAX,
            halve_watermark: usize::MAX,
            reduced_fanout: 2,
        };
        let mut g = Gateway::new(supervisor(plan), cfg);
        // Tenant 2 is offered ~333 req/s but its quota admits 20 req/s with
        // a burst of 1: the first request passes, the rest are shed.
        g.enable_tenancy(TenancyConfig {
            quotas: vec![
                TenantQuota::unlimited(),
                TenantQuota::unlimited(),
                TenantQuota::new(20.0, 1.0),
            ],
            quantum: 8,
        });
        let d = data();
        let n = 24;
        let mut all = Vec::new();
        for (i, b) in batches(n).iter().enumerate() {
            all.extend(g.submit_from(&d, i as f64 * 1000.0, i % 3, b));
        }
        all.extend(g.drain(&d));
        assert_eq!(all.len(), n, "every request must resolve exactly once");

        let quota_shed: Vec<&Completion> = all
            .iter()
            .filter(|c| {
                c.outcome
                    == BatchOutcome::Shed {
                        cause: ShedCause::QuotaExceeded,
                    }
            })
            .collect();
        assert!(!quota_shed.is_empty(), "tenant 2 must exceed its quota");
        assert!(
            quota_shed.iter().all(|c| c.tenant == 2),
            "only the over-quota tenant may be quota-shed"
        );
        let served_by = |t: usize| {
            all.iter()
                .filter(|c| c.tenant == t && c.outcome.trained())
                .count()
        };
        assert!(
            served_by(0) > 0 && served_by(1) > 0,
            "DRR must serve both tenants"
        );
        assert!(
            (served_by(0) as i64 - served_by(1) as i64).abs() <= 1,
            "equal offered load must get near-equal service: {} vs {}",
            served_by(0),
            served_by(1)
        );

        // Per-tenant counters reconcile with the completion stream.
        let tm = &g.supervisor.trainer.telemetry;
        for t in 0..3 {
            let submitted = all.iter().filter(|c| c.tenant == t).count() as u64;
            let shed = all
                .iter()
                .filter(|c| c.tenant == t && matches!(c.outcome, BatchOutcome::Shed { .. }))
                .count() as u64;
            let tenant = t.to_string();
            assert_eq!(
                tm.counter_with(
                    "gt_gateway_tenant_submitted_total",
                    "",
                    &[("tenant", &tenant)]
                )
                .get(),
                submitted
            );
            assert_eq!(
                tm.counter_with("gt_gateway_tenant_shed_total", "", &[("tenant", &tenant)])
                    .get(),
                shed
            );
            assert_eq!(
                tm.counter_with("gt_gateway_tenant_served_total", "", &[("tenant", &tenant)])
                    .get(),
                submitted - shed
            );
        }
    }

    /// Identical plans and arrival sequences resolve identically — the
    /// gateway inherits the stack's determinism contract.
    #[test]
    fn gateway_is_deterministic() {
        let run = || {
            let plan = FaultPlan::new(9)
                .with_serve_delay_window(30_000.0, 0, None)
                .with_transfer_failure(0.2);
            let mut g = Gateway::new(
                supervisor(plan),
                OverloadConfig {
                    queue_capacity: 3,
                    deadline_us: 200_000.0,
                    degrade_watermark: 1,
                    halve_watermark: 2,
                    reduced_fanout: 2,
                },
            );
            g.enable_tenancy(TenancyConfig {
                quotas: vec![TenantQuota::new(400.0, 2.0), TenantQuota::unlimited()],
                quantum: 8,
            });
            let d = data();
            let mut all = Vec::new();
            for (i, b) in batches(12).iter().enumerate() {
                all.extend(g.submit_from(&d, i as f64 * 2000.0, i % 2, b));
            }
            all.extend(g.drain(&d));
            all
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_arrivals_are_rejected() {
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), OverloadConfig::default());
        let d = data();
        g.submit(&d, 100.0, &[0, 1]);
        g.submit(&d, 50.0, &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "before any submission")]
    fn tenancy_after_submission_is_rejected() {
        let mut g = Gateway::new(supervisor(FaultPlan::new(0)), OverloadConfig::default());
        let d = data();
        g.submit(&d, 0.0, &[0, 1]);
        g.enable_tenancy(TenancyConfig {
            quotas: vec![TenantQuota::unlimited()],
            quantum: 8,
        });
    }
}
