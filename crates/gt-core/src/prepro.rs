//! Runs the real preprocessing work (S, R, K) for one batch and measures it.
//!
//! The measured work counts feed the service-wide tensor scheduler's cost
//! model, which prices the same work under different schedules (serialized
//! baselines vs GraphTensor's pipelined subtasks) on the modeled 12-core
//! host (DESIGN.md §2). The work itself executes on the `gt_par` thread
//! pool (S split into A + H phases, R and K chunk-parallel); each stage is
//! wrapped in a telemetry span on the `prepro` track so real overlap shows
//! up next to the DES-predicted schedule in a Perfetto trace.

use crate::data::GraphData;
use gt_graph::VId;
use gt_par::ThreadPool;
use gt_sample::{
    lookup_all_with_pool, try_reindex_layer_with_pool, try_sample_batch_with_pool, LayerGraph,
    SamplerConfig,
};
use gt_tensor::dense::Matrix;
use std::sync::Arc;

/// Measured work of one hop's preprocessing.
#[derive(Debug, Clone, Copy, Default)]
pub struct HopWork {
    /// Sampling algorithm operations (adjacency scans + random draws).
    pub sample_alg_ops: u64,
    /// Sampling hash-table operations (inserts + hits).
    pub sample_hash_ops: u64,
    /// Reindexing operations (2 hash lookups + CSR/CSC build per edge).
    pub reindex_ops: u64,
    /// Unique nodes this hop added to the batch.
    pub nodes_added: u64,
    /// Edges sampled in this hop.
    pub edges: u64,
    /// Bytes of the hop's CSR+CSC structures (what T(R) moves).
    pub structure_bytes: u64,
    /// Bytes of the embeddings this hop's new nodes need (what T(K) moves).
    pub feature_bytes: u64,
}

/// Measured preprocessing work for one batch.
#[derive(Debug, Clone, Default)]
pub struct PreproWork {
    /// Per-hop measurements, hop 1 first.
    pub hops: Vec<HopWork>,
    /// Batch (seed) node count — their embeddings are known immediately.
    pub batch_nodes: u64,
    /// Bytes of the seed nodes' embeddings.
    pub batch_feature_bytes: u64,
    /// Total unique sampled nodes.
    pub total_nodes: u64,
    /// Total feature bytes gathered by K (= transferred by T(K)).
    pub total_feature_bytes: u64,
}

impl PreproWork {
    /// Total sampling ops across hops (algorithm + hash).
    pub fn total_sample_ops(&self) -> u64 {
        self.hops
            .iter()
            .map(|h| h.sample_alg_ops + h.sample_hash_ops)
            .sum()
    }

    /// Total reindexing ops across hops.
    pub fn total_reindex_ops(&self) -> u64 {
        self.hops.iter().map(|h| h.reindex_ops).sum()
    }

    /// Total structure bytes across hops.
    pub fn total_structure_bytes(&self) -> u64 {
        self.hops.iter().map(|h| h.structure_bytes).sum()
    }
}

/// Everything the GPU stage needs, plus the work measurements.
#[derive(Debug)]
pub struct PreproResult {
    /// Per-GNN-layer subgraphs in execution order: `layers[0]` is the
    /// outermost hop (consumed by GNN layer 1).
    pub layers: Vec<Arc<LayerGraph>>,
    /// Gathered input features (row = new VID), ready for transfer.
    pub features: Matrix,
    /// Dense new → original id table.
    pub new_to_orig: Vec<VId>,
    /// Id-space boundaries per hop (`boundaries[0]` = batch size).
    pub boundaries: Vec<usize>,
    /// Measured work for the scheduler.
    pub work: PreproWork,
}

/// Run S, R, and K for one batch on the process-wide pool (`GT_THREADS`).
pub fn run_prepro(data: &GraphData, batch: &[VId], cfg: &SamplerConfig) -> PreproResult {
    run_prepro_with_pool(data, batch, cfg, ThreadPool::global())
}

/// [`run_prepro`] on an explicit pool — determinism tests and the scaling
/// bench pin pool widths directly.
pub fn run_prepro_with_pool(
    data: &GraphData,
    batch: &[VId],
    cfg: &SamplerConfig,
    pool: &ThreadPool,
) -> PreproResult {
    let telemetry = gt_telemetry::global();
    let sample = {
        let _s = telemetry.span("prepro", "S (sample)");
        try_sample_batch_with_pool(&data.graph, batch, cfg, pool).unwrap_or_else(|e| panic!("{e}"))
    };
    let nhops = sample.hops.len();
    let feat_row_bytes = (data.feature_dim() * 4) as u64;

    // Attribute sampling work to hops proportionally to their edge counts
    // (the sampler's counters are batch-global).
    let total_edges: u64 = sample.hops.iter().map(|h| h.len() as u64).sum();
    let vstats = sample.vidmap.stats();

    let mut hops = Vec::with_capacity(nhops);
    let mut layers_rev = Vec::with_capacity(nhops);
    for (k, hop) in sample.hops.iter().enumerate() {
        let edges = hop.len() as u64;
        let share = if total_edges == 0 {
            0.0
        } else {
            edges as f64 / total_edges as f64
        };
        let lg = {
            let _s = telemetry.span("prepro", "R (reindex)");
            try_reindex_layer_with_pool(
                hop,
                &sample.vidmap,
                sample.boundaries[k],
                sample.boundaries[k + 1],
                pool,
            )
            .unwrap_or_else(|e| panic!("{e}"))
        };
        let nodes_added = (sample.boundaries[k + 1] - sample.boundaries[k]) as u64;
        hops.push(HopWork {
            sample_alg_ops: ((sample.stats.edges_visited + sample.stats.draws) as f64 * share)
                as u64,
            sample_hash_ops: (((vstats.inserts + vstats.hits) as f64) * share) as u64,
            // 2 hash lookups per edge (src + dst) plus CSR and CSC builds.
            reindex_ops: 4 * edges,
            nodes_added,
            edges,
            structure_bytes: lg.structure_bytes(),
            feature_bytes: nodes_added * feat_row_bytes,
        });
        layers_rev.push(Arc::new(lg));
    }
    // Execution order: GNN layer l consumes hops[nhops - 1 - l].
    let layers: Vec<Arc<LayerGraph>> = layers_rev.into_iter().rev().collect();

    let new_to_orig = sample.new_to_orig();
    let gathered = {
        let _s = telemetry.span("prepro", "K (lookup)");
        lookup_all_with_pool(&data.features, &new_to_orig, pool)
    };
    let features = Matrix::from_vec(gathered.rows(), gathered.dim(), gathered.into_vec());

    let total_nodes = sample.num_nodes() as u64;
    let work = PreproWork {
        hops,
        batch_nodes: batch.len() as u64,
        batch_feature_bytes: batch.len() as u64 * feat_row_bytes,
        total_nodes,
        total_feature_bytes: total_nodes * feat_row_bytes,
    };

    PreproResult {
        layers,
        features,
        new_to_orig,
        boundaries: sample.boundaries,
        work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> GraphData {
        GraphData::synthetic(200, 2000, 6, 3, 7)
    }

    fn cfg() -> SamplerConfig {
        SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn layer_order_is_outermost_first() {
        let d = data();
        let r = run_prepro(&d, &[0, 1, 2, 3], &cfg());
        assert_eq!(r.layers.len(), 2);
        // Layer 0 (outermost hop) has the largest src space.
        assert_eq!(r.layers[0].num_src, *r.boundaries.last().unwrap());
        // Last layer's dst space is the batch.
        assert_eq!(r.layers[1].num_dst, 4);
        // Chain: layer 0's dst space equals layer 1's src space.
        assert_eq!(r.layers[0].num_dst, r.layers[1].num_src);
    }

    #[test]
    fn features_match_gather_semantics() {
        let d = data();
        let r = run_prepro(&d, &[5, 6], &cfg());
        assert_eq!(r.features.rows(), r.new_to_orig.len());
        assert_eq!(r.features.cols(), d.feature_dim());
        for (new, &orig) in r.new_to_orig.iter().enumerate() {
            assert_eq!(r.features.row(new), d.features.row(orig));
        }
    }

    #[test]
    fn work_counters_are_consistent() {
        let d = data();
        let r = run_prepro(&d, &[0, 1, 2], &cfg());
        let w = &r.work;
        assert_eq!(w.batch_nodes, 3);
        assert_eq!(
            w.total_nodes,
            w.batch_nodes + w.hops.iter().map(|h| h.nodes_added).sum::<u64>()
        );
        assert_eq!(
            w.total_feature_bytes,
            w.total_nodes * (d.feature_dim() * 4) as u64
        );
        assert!(w.total_sample_ops() > 0);
        assert!(w.total_reindex_ops() > 0);
        for h in &w.hops {
            assert!(h.structure_bytes > 0);
            assert_eq!(h.reindex_ops, 4 * h.edges);
        }
    }

    #[test]
    fn deterministic() {
        let d = data();
        let a = run_prepro(&d, &[0, 1], &cfg());
        let b = run_prepro(&d, &[0, 1], &cfg());
        assert_eq!(a.new_to_orig, b.new_to_orig);
        assert_eq!(a.features, b.features);
    }
}
