//! Host-resident training data: the full graph (in-adjacency CSR), the
//! global embedding table, and per-vertex labels.

use gt_graph::{Csr, EmbeddingTable, VId};

/// A training workload as it sits in host memory before preprocessing.
#[derive(Debug, Clone)]
pub struct GraphData {
    /// Full graph, dst-indexed (in-neighbors per vertex).
    pub graph: Csr,
    /// Global embedding table (row = vertex, Table II "feature dim").
    pub features: EmbeddingTable,
    /// Per-vertex class labels in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of label classes (Table II "out dim").
    pub num_classes: usize,
}

impl GraphData {
    /// Validates shape agreement between graph, features, and labels.
    pub fn new(
        graph: Csr,
        features: EmbeddingTable,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert_eq!(graph.num_vertices(), features.rows(), "feature rows");
        assert_eq!(graph.num_vertices(), labels.len(), "label count");
        assert!(num_classes > 0);
        debug_assert!(labels.iter().all(|&l| l < num_classes));
        GraphData {
            graph,
            features,
            labels,
            num_classes,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.features.dim()
    }

    /// Labels for a batch of vertex ids.
    pub fn batch_labels(&self, batch: &[VId]) -> Vec<usize> {
        batch.iter().map(|&v| self.labels[v as usize]).collect()
    }

    /// A small deterministic synthetic workload for tests: an Erdős–Rényi
    /// graph with random features and labels.
    pub fn synthetic(
        num_vertices: usize,
        num_edges: usize,
        feature_dim: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        let coo = gt_graph::generators::erdos_renyi(num_vertices, num_edges, seed);
        let (graph, _) = gt_graph::convert::coo_to_csr(&coo);
        let features = EmbeddingTable::random(num_vertices, feature_dim, seed ^ 0xF00D);
        let labels = (0..num_vertices).map(|v| v % num_classes).collect();
        GraphData::new(graph, features, labels, num_classes)
    }

    /// Like [`GraphData::synthetic`], but actually learnable by a
    /// message-passing GNN: the graph is a homophilous planted partition
    /// (90% of edges stay within a label block) and features carry a strong
    /// label signal (label-indexed dimensions boosted). Homophily matters:
    /// on an Erdős–Rényi graph neighbors are label-uncorrelated, so mean
    /// aggregation over L layers dilutes each vertex's own signal to
    /// ~1/deg^L and cross-entropy stalls at ln(num_classes) regardless of
    /// the optimizer. Convergence tests rely on this dataset.
    pub fn synthetic_learnable(
        num_vertices: usize,
        num_edges: usize,
        feature_dim: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        assert!(feature_dim >= num_classes, "need one signal dim per class");
        let coo = gt_graph::generators::planted_partition(
            num_vertices,
            num_edges,
            num_classes,
            0.9,
            seed,
        );
        let (graph, _) = gt_graph::convert::coo_to_csr(&coo);
        let mut features = EmbeddingTable::random(num_vertices, feature_dim, seed ^ 0xF00D);
        let labels: Vec<usize> = (0..num_vertices).map(|v| v % num_classes).collect();
        for (v, &label) in labels.iter().enumerate() {
            features.row_mut(v as VId)[label] += 6.0;
        }
        GraphData::new(graph, features, labels, num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_shapes_agree() {
        let d = GraphData::synthetic(50, 200, 8, 4, 1);
        assert_eq!(d.num_vertices(), 50);
        assert_eq!(d.feature_dim(), 8);
        assert_eq!(d.batch_labels(&[0, 1, 4]), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_rejected() {
        let d = GraphData::synthetic(10, 20, 4, 2, 1);
        GraphData::new(d.graph, d.features, vec![0; 5], 2);
    }
}
