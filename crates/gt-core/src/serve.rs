//! Self-healing serving supervisor.
//!
//! Production GNN serving cannot afford a panic per flaky DMA. The
//! [`Supervisor`] wraps a [`GraphTensor`] trainer in a retry/degrade ladder:
//!
//! * **Transient faults** (failed transfers, transient memory pressure) are
//!   retried with exponential backoff, up to [`ServeConfig::max_retries`].
//! * **Persistent memory pressure** degrades gracefully: after two
//!   consecutive OOM attempts the batch is halved (down to
//!   [`ServeConfig::min_batch`]) so *some* progress is made.
//! * **Repeated preprocessing stalls** (makespan over
//!   [`ServeConfig::prepro_timeout_us`]) trip a strike counter that falls
//!   back from the pipelined scheduler to the serialized one — slower but
//!   free of hash-lock convoys.
//! * **Poison batches** (invalid ids, or exhausted retries) are quarantined
//!   with a structured [`QuarantineRecord`] instead of being retried forever.
//!
//! Faults come from a seeded [`FaultPlan`], so every run is reproducible:
//! the same plan and seed produce the same retries, degradations, and
//! quarantines. With an empty plan the supervisor is a pass-through — the
//! trainer takes its exact unsupervised code path and numerics are
//! bit-identical.

use crate::data::GraphData;
use crate::framework::{BatchOutcome, BatchReport, DegradeAction, FailReason, Framework};
use crate::scheduler::PreproStrategy;
use crate::trainer::GraphTensor;
use gt_graph::VId;
use gt_sample::validate_batch;
use gt_sim::{FaultPlan, SimContext};

/// Retry/degradation policy of the supervisor.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retries after the first failed attempt before quarantining.
    pub max_retries: usize,
    /// First retry waits this long; attempt `k` waits `base · 2ᵏ` µs.
    pub backoff_base_us: f64,
    /// Preprocessing makespan budget; stalls beyond it accrue strikes
    /// (default ∞: never stalls).
    pub prepro_timeout_us: f64,
    /// Stalled batches tolerated before degrading pipelined→serialized.
    pub stall_strikes: usize,
    /// Batch halving floor: never shrink a batch below this many vertices.
    pub min_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_retries: 3,
            backoff_base_us: 50.0,
            prepro_timeout_us: f64::INFINITY,
            stall_strikes: 2,
            min_batch: 1,
        }
    }
}

/// A batch the supervisor gave up on, with enough context to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Serving index of the batch (the fault plan's batch coordinate).
    pub batch_index: usize,
    /// The vertex ids as submitted.
    pub batch: Vec<VId>,
    /// The final failure.
    pub reason: FailReason,
    /// Attempts spent before giving up (0 = rejected before any attempt).
    pub attempts: usize,
}

#[cfg(feature = "serde")]
impl gt_telemetry::ToJson for QuarantineRecord {
    fn to_json(&self) -> gt_telemetry::Json {
        use gt_telemetry::Json;
        gt_telemetry::json::obj([
            ("batch_index", self.batch_index.into()),
            (
                "batch",
                Json::Arr(self.batch.iter().map(|&v| Json::from(v as u64)).collect()),
            ),
            ("reason", self.reason.to_json()),
            ("attempts", self.attempts.into()),
        ])
    }
}

/// Wraps a trainer in the retry/degrade/quarantine ladder described in the
/// module docs.
pub struct Supervisor {
    /// The supervised trainer (fail-fast mode is forced on).
    pub trainer: GraphTensor,
    /// Retry/degradation policy.
    pub config: ServeConfig,
    /// Faults injected per (batch, attempt); empty = pass-through.
    pub plan: FaultPlan,
    /// Batches the supervisor gave up on.
    pub quarantine: Vec<QuarantineRecord>,
    /// Total virtual time spent in retry backoff, µs.
    pub backoff_paid_us: f64,
    batches_served: usize,
    strikes: usize,
    degraded_prepro: bool,
}

impl Supervisor {
    /// Supervise `trainer` under `plan`. Forces the trainer into fail-fast
    /// mode so failed transfers and OOMs come back as reports, not panics
    /// or silently-degraded training steps.
    pub fn new(mut trainer: GraphTensor, plan: FaultPlan) -> Self {
        trainer.fail_fast = true;
        Supervisor {
            trainer,
            config: ServeConfig::default(),
            plan,
            quarantine: Vec::new(),
            backoff_paid_us: 0.0,
            batches_served: 0,
            strikes: 0,
            degraded_prepro: false,
        }
    }

    /// Batches served so far (the next batch's fault-plan coordinate).
    pub fn batches_served(&self) -> usize {
        self.batches_served
    }

    /// True once preprocessing has fallen back to the serialized strategy.
    pub fn is_prepro_degraded(&self) -> bool {
        self.degraded_prepro
    }

    /// Train one batch under supervision. Never panics on injected faults;
    /// the report's [`BatchOutcome`] says how the batch resolved.
    pub fn serve_batch(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport {
        let batch_index = self.batches_served;
        self.batches_served += 1;
        let telemetry = self.trainer.telemetry.clone();
        let _span = telemetry
            .span("serve", "serve_batch")
            .arg("batch", batch_index)
            .arg("batch_size", batch.len());
        telemetry
            .counter(
                "gt_serve_batches_total",
                "Batches submitted to the supervisor",
            )
            .inc();

        // Poison batches are rejected before they can touch the trainer.
        // Repeated ids are valid for the sampler (a BPR user may recur
        // across triples) but not for supervised training, where labels are
        // gathered per batch entry and rows per unique vertex.
        let has_dup = {
            let mut seen = std::collections::HashSet::with_capacity(batch.len());
            !batch.iter().all(|v| seen.insert(v))
        };
        if has_dup || validate_batch(&data.graph, batch, &self.trainer.sampler).is_err() {
            self.quarantine.push(QuarantineRecord {
                batch_index,
                batch: batch.to_vec(),
                reason: FailReason::InvalidBatch,
                attempts: 0,
            });
            let outcome = BatchOutcome::Quarantined {
                reason: FailReason::InvalidBatch,
                attempts: 0,
            };
            self.note_outcome(&telemetry, batch_index, &outcome);
            return BatchReport {
                loss: f32::NAN,
                sim: SimContext::new(self.trainer.sys.gpu.clone()),
                prepro: None,
                num_nodes: 0,
                num_edges: 0,
                oom: None,
                outcome,
                telemetry: telemetry.clone(),
            };
        }

        let mut cur: Vec<VId> = batch.to_vec();
        let mut halved: Option<DegradeAction> = None;
        let mut consecutive_oom = 0usize;
        let mut attempt = 0usize;
        loop {
            if !self.plan.is_empty() {
                self.trainer.injected = Some(self.plan.active(batch_index, attempt));
            }
            if self.degraded_prepro {
                self.trainer.prepro_override = Some(PreproStrategy::Serial);
            }
            let mut report = self.trainer.train_batch(data, &cur);

            let reason = match report.outcome {
                BatchOutcome::Failed { reason } => reason,
                _ => {
                    // Trained. Account a stall strike before classifying.
                    let just_degraded = if !self.degraded_prepro
                        && report.prepro_us() > self.config.prepro_timeout_us
                    {
                        self.strikes += 1;
                        if self.strikes >= self.config.stall_strikes {
                            self.degraded_prepro = true;
                            telemetry
                                .counter(
                                    "gt_serve_prepro_serializations_total",
                                    "Pipelined→serialized preprocessing fallbacks",
                                )
                                .inc();
                            telemetry.event(
                                "serve",
                                "prepro_serialized",
                                &[("batch", &batch_index), ("strikes", &self.strikes)],
                            );
                        }
                        self.degraded_prepro
                    } else {
                        false
                    };
                    report.outcome = if let Some(action) = halved {
                        BatchOutcome::Degraded {
                            action,
                            retries: attempt,
                        }
                    } else if just_degraded {
                        BatchOutcome::Degraded {
                            action: DegradeAction::SerializedPrepro,
                            retries: attempt,
                        }
                    } else if attempt > 0 {
                        BatchOutcome::Recovered { retries: attempt }
                    } else {
                        BatchOutcome::Succeeded
                    };
                    self.note_outcome(&telemetry, batch_index, &report.outcome);
                    return report;
                }
            };

            if attempt >= self.config.max_retries {
                self.quarantine.push(QuarantineRecord {
                    batch_index,
                    batch: batch.to_vec(),
                    reason,
                    attempts: attempt + 1,
                });
                report.outcome = BatchOutcome::Quarantined {
                    reason,
                    attempts: attempt + 1,
                };
                self.note_outcome(&telemetry, batch_index, &report.outcome);
                return report;
            }

            match reason {
                FailReason::TransferFailure => {
                    // Transient by assumption: back off and re-roll.
                    let wait_us = self.config.backoff_base_us * (1u64 << attempt) as f64;
                    self.backoff_paid_us += wait_us;
                    telemetry
                        .counter(
                            "gt_serve_backoff_us_total",
                            "Virtual µs spent in retry backoff",
                        )
                        .add(wait_us as u64);
                    consecutive_oom = 0;
                }
                FailReason::OutOfMemory => {
                    consecutive_oom += 1;
                    // One plain retry first (transient pressure clears);
                    // a second OOM in a row means the batch must shrink.
                    if consecutive_oom >= 2 && cur.len() > self.config.min_batch {
                        let from = cur.len();
                        let to = (from / 2).max(self.config.min_batch);
                        halved = Some(match halved {
                            Some(DegradeAction::HalvedBatch { from, .. }) => {
                                DegradeAction::HalvedBatch { from, to }
                            }
                            _ => DegradeAction::HalvedBatch {
                                from: batch.len(),
                                to,
                            },
                        });
                        cur.truncate(to);
                        consecutive_oom = 0;
                        telemetry
                            .counter("gt_serve_halvings_total", "OOM batch halvings")
                            .inc();
                        telemetry.event(
                            "serve",
                            "oom_halving",
                            &[("batch", &batch_index), ("from", &from), ("to", &to)],
                        );
                    }
                }
                FailReason::InvalidBatch | FailReason::PreproStall => {}
            }
            telemetry
                .counter("gt_serve_retries_total", "Retry attempts after a failure")
                .inc();
            telemetry.event(
                "serve",
                "retry",
                &[
                    ("batch", &batch_index),
                    ("attempt", &attempt),
                    ("reason", &reason.label()),
                ],
            );
            attempt += 1;
        }
    }

    /// Funnel every resolved [`BatchOutcome`] into one structured event and
    /// the per-outcome counters — the supervisor's externally visible
    /// transition record.
    fn note_outcome(
        &self,
        telemetry: &gt_telemetry::Telemetry,
        batch_index: usize,
        outcome: &BatchOutcome,
    ) {
        let (name, help) = match outcome {
            BatchOutcome::Succeeded => ("gt_serve_succeeded_total", "Batches trained first try"),
            BatchOutcome::Recovered { .. } => {
                ("gt_serve_recovered_total", "Batches trained after retries")
            }
            BatchOutcome::Degraded { .. } => {
                ("gt_serve_degraded_total", "Batches trained degraded")
            }
            BatchOutcome::Failed { .. } => ("gt_serve_failed_total", "Single failed attempts"),
            BatchOutcome::Quarantined { .. } => {
                ("gt_serve_quarantined_total", "Batches quarantined")
            }
        };
        telemetry.counter(name, help).inc();
        telemetry.event(
            "serve",
            "outcome",
            &[("batch", &batch_index), ("outcome", &outcome.label())],
        );
    }
}
