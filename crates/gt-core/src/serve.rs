//! Self-healing serving supervisor.
//!
//! Production GNN serving cannot afford a panic per flaky DMA. The
//! [`Supervisor`] wraps a [`GraphTensor`] trainer in a retry/degrade ladder:
//!
//! * **Transient faults** (failed transfers, transient memory pressure) are
//!   retried with exponential backoff, up to [`ServeConfig::max_retries`].
//! * **Persistent memory pressure** degrades gracefully: after two
//!   consecutive OOM attempts the batch is halved (down to
//!   [`ServeConfig::min_batch`]) so *some* progress is made.
//! * **Repeated preprocessing stalls** (makespan over
//!   [`ServeConfig::prepro_timeout_us`]) trip a strike counter that falls
//!   back from the pipelined scheduler to the serialized one — slower but
//!   free of hash-lock convoys.
//! * **Poison batches** (invalid ids, or exhausted retries) are quarantined
//!   with a structured [`QuarantineRecord`] instead of being retried forever.
//!
//! Faults come from a seeded [`FaultPlan`], so every run is reproducible:
//! the same plan and seed produce the same retries, degradations, and
//! quarantines. With an empty plan the supervisor is a pass-through — the
//! trainer takes its exact unsupervised code path and numerics are
//! bit-identical.

use crate::cache::{CacheConfig, CacheStats, ServingCaches};
use crate::data::GraphData;
use crate::error::GtError;
use crate::framework::{BatchOutcome, BatchReport, DegradeAction, FailReason, Framework};
use crate::journal::{self, Journal};
use crate::scheduler::PreproStrategy;
use crate::tracing::{RequestTracer, TracerConfig};
use crate::trainer::GraphTensor;
use gt_graph::VId;
use gt_sample::validate_batch;
use gt_sim::{CrashSite, FaultPlan, SimContext};
use gt_telemetry::ToJson;
use gt_tensor::{chaosio, checkpoint};
use std::path::PathBuf;

/// Retry/degradation policy of the supervisor.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retries after the first failed attempt before quarantining.
    pub max_retries: usize,
    /// First retry waits this long; attempt `k` waits `base · 2ᵏ` µs.
    pub backoff_base_us: f64,
    /// Preprocessing makespan budget; stalls beyond it accrue strikes
    /// (default ∞: never stalls).
    pub prepro_timeout_us: f64,
    /// Stalled batches tolerated before degrading pipelined→serialized.
    pub stall_strikes: usize,
    /// Batch halving floor: never shrink a batch below this many vertices.
    pub min_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_retries: 3,
            backoff_base_us: 50.0,
            prepro_timeout_us: f64::INFINITY,
            stall_strikes: 2,
            min_batch: 1,
        }
    }
}

/// A batch the supervisor gave up on, with enough context to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Serving index of the batch (the fault plan's batch coordinate).
    pub batch_index: usize,
    /// The vertex ids as submitted.
    pub batch: Vec<VId>,
    /// The final failure.
    pub reason: FailReason,
    /// Attempts spent before giving up (0 = rejected before any attempt).
    pub attempts: usize,
}

impl gt_telemetry::ToJson for QuarantineRecord {
    fn to_json(&self) -> gt_telemetry::Json {
        use gt_telemetry::Json;
        gt_telemetry::json::obj([
            ("batch_index", self.batch_index.into()),
            (
                "batch",
                Json::Arr(self.batch.iter().map(|&v| Json::from(v as u64)).collect()),
            ),
            ("reason", self.reason.to_json()),
            ("attempts", self.attempts.into()),
        ])
    }
}

/// Where durable state lives and how often parameters are checkpointed.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the journal and checkpoint (created on demand).
    pub dir: PathBuf,
    /// Checkpoint the parameters every N served batches (0 = only the
    /// final/explicit checkpoints).
    pub checkpoint_every: usize,
}

impl DurabilityConfig {
    /// Durable state under `dir`, checkpointing every 8 batches.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 8,
        }
    }

    /// Path of the write-ahead outcome journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("outcomes.gtj")
    }

    /// Path of the parameter checkpoint.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("params.gt")
    }
}

/// What [`Supervisor::recover`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journaled batches replayed (the next batch's serving index).
    pub batches_replayed: usize,
    /// Quarantine records restored from the journal.
    pub quarantine_restored: usize,
    /// Checkpoint markers whose image CRC matched the replayed parameters.
    pub checkpoints_verified: usize,
    /// True when a torn tail (an append interrupted by the crash) was
    /// dropped and truncated away.
    pub torn_tail_dropped: bool,
}

struct DurabilityState {
    journal: Journal,
    cfg: DurabilityConfig,
    /// Durability faults (crash rules, storage-fault rules) at batch
    /// indices below this are suppressed: the fault already hit the
    /// previous process, and the recovered one has outlived it (a real
    /// kill -9 or torn write does not re-fire on the restarted process
    /// either). Without this, a persistent fault rule would re-kill every
    /// recovery at the same batch — a livelock.
    suppress_faults_below: usize,
}

/// Wraps a trainer in the retry/degrade/quarantine ladder described in the
/// module docs.
pub struct Supervisor {
    /// The supervised trainer (fail-fast mode is forced on).
    pub trainer: GraphTensor,
    /// Retry/degradation policy.
    pub config: ServeConfig,
    /// Faults injected per (batch, attempt); empty = pass-through.
    pub plan: FaultPlan,
    /// Batches the supervisor gave up on.
    pub quarantine: Vec<QuarantineRecord>,
    /// Total virtual time spent in retry backoff, µs.
    pub backoff_paid_us: f64,
    /// Per-request causal tracer + flight recorder + SLO engine; `None`
    /// (the default) keeps serving exactly as before tracing existed.
    pub tracer: Option<RequestTracer>,
    batches_served: usize,
    strikes: usize,
    degraded_prepro: bool,
    durability: Option<DurabilityState>,
    /// Cluster-worker tag stamped on journaled batch records (`None` for
    /// single-node serving; set per batch by the cluster supervisor).
    worker_tag: Option<usize>,
    /// Skew-exploiting serving caches; `None` (the default) keeps serving
    /// exactly as before caching existed.
    caches: Option<ServingCaches>,
}

impl Supervisor {
    /// Supervise `trainer` under `plan`. Forces the trainer into fail-fast
    /// mode so failed transfers and OOMs come back as reports, not panics
    /// or silently-degraded training steps.
    pub fn new(mut trainer: GraphTensor, plan: FaultPlan) -> Self {
        trainer.fail_fast = true;
        Supervisor {
            trainer,
            config: ServeConfig::default(),
            plan,
            quarantine: Vec::new(),
            backoff_paid_us: 0.0,
            tracer: None,
            batches_served: 0,
            strikes: 0,
            degraded_prepro: false,
            durability: None,
            worker_tag: None,
            caches: None,
        }
    }

    /// Tag journaled batch records with the cluster worker that owns the
    /// next batch's partition (`None` restores untagged single-node
    /// records). Recovery enforces strictly increasing batch indices per
    /// tag, so a reordered journal cannot replay silently.
    pub fn set_worker_tag(&mut self, worker: Option<usize>) {
        self.worker_tag = worker;
    }

    /// Batches served so far (the next batch's fault-plan coordinate).
    pub fn batches_served(&self) -> usize {
        self.batches_served
    }

    /// True once preprocessing has fallen back to the serialized strategy.
    pub fn is_prepro_degraded(&self) -> bool {
        self.degraded_prepro
    }

    /// Attach a [`RequestTracer`] with `config`, evaluating `slo` when
    /// given, exporting through the trainer's telemetry handle. From now
    /// on every resolved batch yields a span tree in the flight recorder.
    pub fn enable_tracing(
        &mut self,
        config: TracerConfig,
        slo: Option<gt_telemetry::SloSpec>,
    ) -> &mut RequestTracer {
        self.tracer = Some(RequestTracer::new(
            config,
            slo,
            self.trainer.telemetry.clone(),
        ));
        self.tracer.as_mut().expect("just set")
    }

    /// Attach the skew-exploiting serving caches (see [`crate::cache`]).
    /// From now on every trained batch consults the historical-embedding
    /// and sampled-subgraph caches; hits shrink the *modeled* service
    /// time the gateway charges, while the numerics (parameters, journal,
    /// checkpoints) stay byte-identical to an uncached run.
    pub fn enable_caches(&mut self, config: CacheConfig) {
        self.caches = Some(ServingCaches::new(config));
    }

    /// Running cache totals, when caching is enabled.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.caches.as_ref().map(|c| c.stats())
    }

    /// Modeled µs the most recent batch saved via cache hits (0 when
    /// caching is off) — what the gateway subtracts from the batch's
    /// preprocessing time when pricing service.
    pub fn cache_saved_us(&self) -> f64 {
        self.caches.as_ref().map_or(0.0, |c| c.last_saved_us())
    }

    /// The serving caches, when enabled.
    pub fn caches(&self) -> Option<&ServingCaches> {
        self.caches.as_ref()
    }

    /// Train one batch under supervision. Never panics on injected faults;
    /// the report's [`BatchOutcome`] says how the batch resolved.
    pub fn serve_batch(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport {
        let batch_index = self.batches_served;
        let backoff_before = self.backoff_paid_us;
        let report = self.serve_batch_inner(data, batch);
        if let Some(caches) = self.caches.as_mut() {
            // Quarantined/shed batches never reached the preprocessing
            // pipeline, so they neither consult nor populate the caches.
            if report.outcome.trained() {
                let lookup = caches.consult(batch, self.trainer.sampler.fanout);
                // A subgraph hit skips sampling + reindex outright; cached
                // embedding rows shrink the lookup phase by the batch's
                // hit fraction. Capped at the makespan: a cache can erase
                // preprocessing, never GPU compute.
                let mut saved = 0.0;
                if let Some(schedule) = &report.prepro {
                    if lookup.subgraph_hit {
                        saved += schedule.phase_busy_us(gt_sim::Phase::Sampling)
                            + schedule.phase_busy_us(gt_sim::Phase::Reindex);
                    }
                    if lookup.batch_len > 0 {
                        saved += schedule.phase_busy_us(gt_sim::Phase::Lookup)
                            * lookup.embedding_hits as f64
                            / lookup.batch_len as f64;
                    }
                }
                let saved = saved.min(report.prepro_us());
                caches.note_saved(saved);
                let telemetry = self.trainer.telemetry.clone();
                telemetry
                    .counter(
                        "gt_cache_embedding_hits_total",
                        "Embedding-cache hits (batch vertices)",
                    )
                    .add(lookup.embedding_hits as u64);
                telemetry
                    .counter(
                        "gt_cache_embedding_misses_total",
                        "Embedding-cache misses (batch vertices)",
                    )
                    .add((lookup.batch_len - lookup.embedding_hits) as u64);
                telemetry
                    .counter(
                        "gt_cache_subgraph_hits_total",
                        "Sampled-subgraph cache hits (batches)",
                    )
                    .add(lookup.subgraph_hit as u64);
                telemetry
                    .counter(
                        "gt_cache_subgraph_misses_total",
                        "Sampled-subgraph cache misses (batches)",
                    )
                    .add(!lookup.subgraph_hit as u64);
                telemetry
                    .counter(
                        "gt_cache_saved_us_total",
                        "Modeled preprocessing µs saved by cache hits",
                    )
                    .add(saved as u64);
            } else {
                caches.note_saved(0.0);
            }
        }
        if self.tracer.is_some() {
            // The injected serving stall is charged by the layer above the
            // trainer (gateway service pricing); re-derive it here so the
            // trace's stall segment agrees with that pricing exactly.
            let stall_us = if self.plan.is_empty() {
                0.0
            } else {
                self.plan
                    .active(batch_index, 0)
                    .serve_delay_us()
                    .unwrap_or(0.0)
            };
            let backoff_us = self.backoff_paid_us - backoff_before;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.finish_batch(batch_index, &report, stall_us, backoff_us);
            }
        }
        report
    }

    /// The retry/degrade ladder itself (see [`Supervisor::serve_batch`]).
    fn serve_batch_inner(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport {
        let batch_index = self.batches_served;
        self.batches_served += 1;
        let telemetry = self.trainer.telemetry.clone();
        let _span = telemetry
            .span("serve", "serve_batch")
            .arg("batch", batch_index)
            .arg("batch_size", batch.len());
        telemetry
            .counter(
                "gt_serve_batches_total",
                "Batches submitted to the supervisor",
            )
            .inc();

        // Poison batches are rejected before they can touch the trainer.
        // Repeated ids are valid for the sampler (a BPR user may recur
        // across triples) but not for supervised training, where labels are
        // gathered per batch entry and rows per unique vertex.
        let has_dup = {
            let mut seen = std::collections::HashSet::with_capacity(batch.len());
            !batch.iter().all(|v| seen.insert(v))
        };
        if has_dup || validate_batch(&data.graph, batch, &self.trainer.sampler).is_err() {
            self.quarantine.push(QuarantineRecord {
                batch_index,
                batch: batch.to_vec(),
                reason: FailReason::InvalidBatch,
                attempts: 0,
            });
            let outcome = BatchOutcome::Quarantined {
                reason: FailReason::InvalidBatch,
                attempts: 0,
            };
            self.note_outcome(&telemetry, batch_index, &outcome);
            return BatchReport {
                loss: f32::NAN,
                sim: SimContext::new(self.trainer.sys.gpu.clone()),
                prepro: None,
                num_nodes: 0,
                num_edges: 0,
                oom: None,
                outcome,
                telemetry: telemetry.clone(),
            };
        }

        let mut cur: Vec<VId> = batch.to_vec();
        let mut halved: Option<DegradeAction> = None;
        let mut consecutive_oom = 0usize;
        let mut attempt = 0usize;
        loop {
            if !self.plan.is_empty() {
                // Serving-layer faults (crashes, serve stalls) are filtered
                // out: the trainer and DES must take the exact fault-free
                // path for them, or replay-based recovery loses its
                // bit-identity contract.
                self.trainer.injected = Some(self.plan.active(batch_index, attempt).des_relevant());
            }
            if self.degraded_prepro {
                self.trainer.prepro_override = Some(PreproStrategy::Serial);
            }
            let mut report = self.trainer.train_batch(data, &cur);

            let reason = match report.outcome {
                BatchOutcome::Failed { reason } => reason,
                _ => {
                    // Trained. Account a stall strike before classifying.
                    let just_degraded = if !self.degraded_prepro
                        && report.prepro_us() > self.config.prepro_timeout_us
                    {
                        self.strikes += 1;
                        if self.strikes >= self.config.stall_strikes {
                            self.degraded_prepro = true;
                            telemetry
                                .counter(
                                    "gt_serve_prepro_serializations_total",
                                    "Pipelined→serialized preprocessing fallbacks",
                                )
                                .inc();
                            telemetry.event(
                                "serve",
                                "prepro_serialized",
                                &[("batch", &batch_index), ("strikes", &self.strikes)],
                            );
                        }
                        self.degraded_prepro
                    } else {
                        false
                    };
                    report.outcome = if let Some(action) = halved {
                        BatchOutcome::Degraded {
                            action,
                            retries: attempt,
                        }
                    } else if just_degraded {
                        BatchOutcome::Degraded {
                            action: DegradeAction::SerializedPrepro,
                            retries: attempt,
                        }
                    } else if attempt > 0 {
                        BatchOutcome::Recovered { retries: attempt }
                    } else {
                        BatchOutcome::Succeeded
                    };
                    self.note_outcome(&telemetry, batch_index, &report.outcome);
                    return report;
                }
            };

            if attempt >= self.config.max_retries {
                self.quarantine.push(QuarantineRecord {
                    batch_index,
                    batch: batch.to_vec(),
                    reason,
                    attempts: attempt + 1,
                });
                report.outcome = BatchOutcome::Quarantined {
                    reason,
                    attempts: attempt + 1,
                };
                self.note_outcome(&telemetry, batch_index, &report.outcome);
                return report;
            }

            match reason {
                FailReason::TransferFailure => {
                    // Transient by assumption: back off and re-roll.
                    let wait_us = self.config.backoff_base_us * (1u64 << attempt) as f64;
                    self.backoff_paid_us += wait_us;
                    telemetry
                        .counter(
                            "gt_serve_backoff_us_total",
                            "Virtual µs spent in retry backoff",
                        )
                        .add(wait_us as u64);
                    consecutive_oom = 0;
                }
                FailReason::OutOfMemory => {
                    consecutive_oom += 1;
                    // One plain retry first (transient pressure clears);
                    // a second OOM in a row means the batch must shrink.
                    if consecutive_oom >= 2 && cur.len() > self.config.min_batch {
                        let from = cur.len();
                        let to = (from / 2).max(self.config.min_batch);
                        halved = Some(match halved {
                            Some(DegradeAction::HalvedBatch { from, .. }) => {
                                DegradeAction::HalvedBatch { from, to }
                            }
                            _ => DegradeAction::HalvedBatch {
                                from: batch.len(),
                                to,
                            },
                        });
                        cur.truncate(to);
                        consecutive_oom = 0;
                        telemetry
                            .counter("gt_serve_halvings_total", "OOM batch halvings")
                            .inc();
                        telemetry.event(
                            "serve",
                            "oom_halving",
                            &[("batch", &batch_index), ("from", &from), ("to", &to)],
                        );
                    }
                }
                FailReason::InvalidBatch | FailReason::PreproStall => {}
            }
            telemetry
                .counter("gt_serve_retries_total", "Retry attempts after a failure")
                .inc();
            telemetry.event(
                "serve",
                "retry",
                &[
                    ("batch", &batch_index),
                    ("attempt", &attempt),
                    ("reason", &reason.label()),
                ],
            );
            attempt += 1;
        }
    }

    /// Funnel every resolved [`BatchOutcome`] into one structured event and
    /// the per-outcome counters — the supervisor's externally visible
    /// transition record.
    fn note_outcome(
        &self,
        telemetry: &gt_telemetry::Telemetry,
        batch_index: usize,
        outcome: &BatchOutcome,
    ) {
        let (name, help) = match outcome {
            BatchOutcome::Succeeded => ("gt_serve_succeeded_total", "Batches trained first try"),
            BatchOutcome::Recovered { .. } => {
                ("gt_serve_recovered_total", "Batches trained after retries")
            }
            BatchOutcome::Degraded { .. } => {
                ("gt_serve_degraded_total", "Batches trained degraded")
            }
            BatchOutcome::Failed { .. } => ("gt_serve_failed_total", "Single failed attempts"),
            BatchOutcome::Quarantined { .. } => {
                ("gt_serve_quarantined_total", "Batches quarantined")
            }
            BatchOutcome::Shed { .. } => ("gt_serve_shed_total", "Batches shed by the gateway"),
        };
        telemetry.counter(name, help).inc();
        telemetry.event(
            "serve",
            "outcome",
            &[("batch", &batch_index), ("outcome", &outcome.label())],
        );
    }

    // ---- durable serving -------------------------------------------------

    /// Turn on durability: create `cfg.dir`, start a fresh write-ahead
    /// journal, and serve through [`Supervisor::serve_durable`] from now
    /// on. For restarting over existing durable state use
    /// [`Supervisor::recover`] instead.
    pub fn make_durable(&mut self, cfg: DurabilityConfig) -> Result<(), GtError> {
        std::fs::create_dir_all(&cfg.dir)?;
        // A fresh journal is a fresh serving history; caches warmed before
        // it opened cannot be replayed, so they must start cold too.
        if let Some(caches) = self.caches.as_mut() {
            caches.reset();
        }
        // A crash between tmp-write and atomic rename in a *previous*
        // process leaks its staging sibling forever; sweep it on startup.
        checkpoint::remove_stale_tmp(cfg.checkpoint_path());
        let journal = Journal::create(cfg.journal_path())?;
        self.durability = Some(DurabilityState {
            journal,
            cfg,
            suppress_faults_below: 0,
        });
        Ok(())
    }

    /// True when outcomes are being journaled.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Serve one batch with the write-ahead guarantee: the outcome (and any
    /// quarantine record) is journaled and fsynced *before* this returns,
    /// so an acknowledged result can never be lost to a crash.
    ///
    /// An active [`gt_sim::FaultKind::Crash`] rule is honored here: the
    /// call leaves exactly the on-disk state a process killed at that site
    /// would leave (a torn journal record, a torn checkpoint staging file,
    /// or a fully committed batch whose report was never delivered) and
    /// returns [`GtError::InjectedCrash`]. The supervisor must then be
    /// rebuilt and [`Supervisor::recover`]ed, as after a real `kill -9`.
    pub fn serve_durable(
        &mut self,
        data: &GraphData,
        batch: &[VId],
    ) -> Result<BatchReport, GtError> {
        let batch_index = self.batches_served;
        let (crash, io_faults) = {
            let d = self.durability.as_ref().ok_or_else(|| GtError::Io {
                detail: "serve_durable before make_durable/recover".to_string(),
            })?;
            if self.plan.is_empty() || batch_index < d.suppress_faults_below {
                (None, Vec::new())
            } else {
                // Durability rules are persistent (attempt 0 decides).
                let active = self.plan.active(batch_index, 0);
                (active.crash_site(), active.io_faults())
            }
        };
        // Arm this batch's storage faults below the durability layer; the
        // guard disarms whatever is left on every exit path, so a fault
        // can never leak into the next batch.
        let _io_guard = chaosio::arm(&io_faults);
        let telemetry = self.trainer.telemetry.clone();
        let report = self.serve_batch(data, batch);
        // The record carries the fanout the batch was actually sampled
        // with: a gateway under load serves with reduced fanout, and a
        // replay at the configured fanout would diverge.
        let rec = journal::batch_record_tagged(
            batch_index,
            batch,
            &report.outcome,
            self.trainer.sampler.fanout,
            self.worker_tag,
        );
        let qrec = match report.outcome {
            BatchOutcome::Quarantined { .. } => {
                self.quarantine.last().map(journal::quarantine_record)
            }
            _ => None,
        };

        let ckpt_path;
        let due;
        {
            let d = self.durability.as_mut().expect("checked above");
            if crash == Some(CrashSite::MidJournal) {
                d.journal.append_torn(&rec)?;
                telemetry.event(
                    "serve",
                    "crash_injected",
                    &[
                        ("batch", &batch_index),
                        ("site", &CrashSite::MidJournal.label()),
                    ],
                );
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer.dump_now(&format!("crash:{}", CrashSite::MidJournal.label()));
                }
                return Err(GtError::InjectedCrash {
                    site: CrashSite::MidJournal,
                });
            }
            d.journal.append(&rec)?;
            if let Some(q) = &qrec {
                d.journal.append(q)?;
            }
            telemetry
                .counter(
                    "gt_journal_records_total",
                    "Records appended to the outcome journal",
                )
                .add(1 + qrec.is_some() as u64);
            ckpt_path = d.cfg.checkpoint_path();
            due = d.cfg.checkpoint_every > 0
                && (batch_index + 1).is_multiple_of(d.cfg.checkpoint_every);
        }

        if crash == Some(CrashSite::MidCheckpoint) {
            // The batch committed to the journal, but the process dies
            // while staging the checkpoint: a torn temporary sibling is
            // left behind and the previous checkpoint stays intact
            // (save_file's atomicity is what makes this survivable).
            let bytes = checkpoint::to_bytes(self.trainer.params());
            std::fs::write(checkpoint::tmp_path(&ckpt_path), &bytes[..bytes.len() / 2])?;
            telemetry.event(
                "serve",
                "crash_injected",
                &[
                    ("batch", &batch_index),
                    ("site", &CrashSite::MidCheckpoint.label()),
                ],
            );
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.dump_now(&format!("crash:{}", CrashSite::MidCheckpoint.label()));
            }
            return Err(GtError::InjectedCrash {
                site: CrashSite::MidCheckpoint,
            });
        }
        if due {
            self.write_checkpoint(batch_index)?;
        }
        if crash == Some(CrashSite::AfterCommit) {
            telemetry.event(
                "serve",
                "crash_injected",
                &[
                    ("batch", &batch_index),
                    ("site", &CrashSite::AfterCommit.label()),
                ],
            );
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.dump_now(&format!("crash:{}", CrashSite::AfterCommit.label()));
            }
            return Err(GtError::InjectedCrash {
                site: CrashSite::AfterCommit,
            });
        }
        Ok(report)
    }

    /// Journal a cluster-layer hedge decision (write-ahead, like
    /// outcomes): which batch was hedged, the straggling worker, the
    /// backup, and which copy won. The cluster supervisor's
    /// `gt_cluster_hedges_*` counters must reconcile exactly against
    /// these records.
    pub fn journal_hedge(
        &mut self,
        batch_index: usize,
        victim: usize,
        backup: usize,
        backup_won: bool,
    ) -> Result<(), GtError> {
        let d = self.durability.as_mut().ok_or_else(|| GtError::Io {
            detail: "journal_hedge before make_durable/recover".to_string(),
        })?;
        d.journal.append(&journal::hedge_record(
            batch_index,
            victim,
            backup,
            backup_won,
        ))?;
        self.trainer
            .telemetry
            .counter(
                "gt_journal_records_total",
                "Records appended to the outcome journal",
            )
            .inc();
        Ok(())
    }

    /// Checkpoint the current parameters now (e.g. at end of serving),
    /// regardless of the periodic cadence.
    pub fn checkpoint_now(&mut self) -> Result<(), GtError> {
        if self.durability.is_none() {
            return Err(GtError::Io {
                detail: "checkpoint_now before make_durable/recover".to_string(),
            });
        }
        self.write_checkpoint(self.batches_served.saturating_sub(1))
    }

    /// Atomically save the checkpoint, then journal a marker carrying the
    /// image fingerprint so replay can verify it byte-for-byte.
    fn write_checkpoint(&mut self, batch_index: usize) -> Result<(), GtError> {
        let bytes = checkpoint::to_bytes(self.trainer.params());
        let d = self.durability.as_mut().expect("durability checked");
        checkpoint::save_file(self.trainer.params(), d.cfg.checkpoint_path())?;
        d.journal.append(&journal::checkpoint_record(
            batch_index,
            checkpoint::image_crc(&bytes),
        ))?;
        self.trainer
            .telemetry
            .counter("gt_checkpoints_total", "Parameter checkpoints committed")
            .inc();
        // Cached subgraphs were sampled against the pre-checkpoint
        // parameter epoch; advancing it retires them deterministically.
        if let Some(caches) = self.caches.as_mut() {
            caches.bump_epoch();
        }
        Ok(())
    }

    /// Rebuild serving state after a crash by replaying the journal.
    ///
    /// `self` must be a freshly-constructed supervisor configured exactly
    /// like the one that crashed (same trainer settings, same fault plan):
    /// the whole pipeline is deterministic, so re-serving the journaled
    /// batches reproduces the crashed process's parameters and outcomes
    /// bit for bit. The journal is simultaneously a cross-check — any
    /// divergence between a recorded outcome (or checkpoint CRC) and its
    /// replay is surfaced as [`GtError::ReplayDiverged`].
    ///
    /// Recovery also self-heals the on-disk state: a torn journal tail is
    /// truncated away, a torn checkpoint staging file is deleted, and the
    /// checkpoint is re-exported from the replayed parameters. Afterwards
    /// the supervisor is durable again and resumes at the exact batch index
    /// where the crash hit.
    pub fn recover(
        &mut self,
        data: &GraphData,
        cfg: DurabilityConfig,
    ) -> Result<RecoveryReport, GtError> {
        let telemetry = self.trainer.telemetry.clone();
        // Checkpoint restore invalidates the serving caches outright; the
        // deterministic replay below rebuilds the exact cache state (and
        // hit counters) the crashed process had at the crash instant.
        if let Some(caches) = self.caches.as_mut() {
            caches.reset();
        }
        let scan = journal::read_journal(cfg.journal_path())?;
        if scan.torn_tail {
            journal::truncate_to(cfg.journal_path(), scan.valid_len)?;
        }
        // A crash mid-checkpoint leaves a torn staging sibling; drop it.
        checkpoint::remove_stale_tmp(cfg.checkpoint_path());

        let corrupt = |detail: &str| GtError::CorruptJournal {
            offset: 0,
            detail: detail.to_string(),
        };
        let mut replayed = 0usize;
        let mut quarantine_restored = 0usize;
        let mut checkpoints_verified = 0usize;
        // Last replayed batch index per cluster-worker tag: the journal's
        // ordering invariant. Outcome comparison alone cannot catch a
        // reordered journal (most outcomes are plain "succeeded"), so the
        // indices themselves are the cross-check.
        let mut worker_last: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for rec in &scan.records {
            match journal::record_type(rec) {
                Some("batch") => {
                    let idx = journal::record_batch_index(rec)
                        .ok_or_else(|| corrupt("batch record without batch_index"))?;
                    if let Some(w) = journal::record_worker(rec) {
                        if worker_last.get(&w).is_some_and(|&last| last >= idx) {
                            return Err(GtError::ReplayDiverged {
                                batch_index: idx,
                                detail: format!(
                                    "per-worker ordering violated: worker {w} already \
                                     journaled batch {}, then batch {idx}",
                                    worker_last[&w]
                                ),
                            });
                        }
                        worker_last.insert(w, idx);
                    }
                    // Batch records are appended with strictly sequential
                    // indices; a gap or swap means the journal was
                    // reordered and must not replay silently.
                    if idx != replayed {
                        return Err(GtError::ReplayDiverged {
                            batch_index: idx,
                            detail: format!(
                                "batch records out of order: expected index {replayed}, \
                                 found {idx}"
                            ),
                        });
                    }
                    let ids = journal::batch_ids(rec)
                        .ok_or_else(|| corrupt("batch record without vertex ids"))?;
                    let recorded = rec
                        .get("outcome")
                        .ok_or_else(|| corrupt("batch record without outcome"))?
                        .to_json_string();
                    // Replay with the fanout the batch was served at (a
                    // gateway may have reduced it under load); records
                    // from journals predating the field use the
                    // configured fanout, exactly as before.
                    let configured_fanout = self.trainer.sampler.fanout;
                    if let Some(f) = journal::record_fanout(rec) {
                        self.trainer.sampler.fanout = f;
                    }
                    let report = self.serve_batch(data, &ids);
                    self.trainer.sampler.fanout = configured_fanout;
                    let got = report.outcome.to_json().to_json_string();
                    if got != recorded {
                        return Err(GtError::ReplayDiverged {
                            batch_index: idx,
                            detail: format!("recorded {recorded}, replayed {got}"),
                        });
                    }
                    replayed += 1;
                }
                Some("quarantine") => {
                    // serve_batch re-quarantined deterministically; the
                    // journaled record must match the one just re-filed.
                    let refiled = self.quarantine.last().map(journal::quarantine_record);
                    if refiled.as_ref() != Some(rec) {
                        return Err(GtError::ReplayDiverged {
                            batch_index: replayed.saturating_sub(1),
                            detail: "journaled quarantine record does not match replay".to_string(),
                        });
                    }
                    quarantine_restored += 1;
                }
                Some("checkpoint") => {
                    let recorded = rec
                        .get("image_crc")
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| corrupt("checkpoint record without image_crc"))?
                        as u32;
                    let computed =
                        checkpoint::image_crc(&checkpoint::to_bytes(self.trainer.params()));
                    if computed != recorded {
                        return Err(GtError::ReplayDiverged {
                            batch_index: replayed.saturating_sub(1),
                            detail: format!(
                                "checkpoint CRC mismatch: recorded {recorded:#010x}, \
                                 replayed {computed:#010x}"
                            ),
                        });
                    }
                    checkpoints_verified += 1;
                    // The live run bumped the cache epoch when this
                    // checkpoint committed; replay must too, or subgraph
                    // keys (and thus hit counters) would diverge.
                    if let Some(caches) = self.caches.as_mut() {
                        caches.bump_epoch();
                    }
                }
                Some("hedge") => {
                    // Cluster-layer annotation of a straggler hedge: the
                    // modeled schedule is not re-run during replay, so the
                    // record is validated and skipped; the cluster
                    // supervisor reconciles its hedge counters against
                    // these records after recovery.
                    journal::hedge_fields(rec)
                        .ok_or_else(|| corrupt("hedge record with missing fields"))?;
                }
                other => {
                    return Err(corrupt(&format!("unknown record type {other:?}")));
                }
            }
        }
        // Self-heal the checkpoint: after replay the freshest parameters
        // are in memory; re-export them so the on-disk artifact is current
        // regardless of where the crash hit.
        if replayed > 0 {
            checkpoint::save_file(self.trainer.params(), cfg.checkpoint_path())?;
        }
        let journal = Journal::open_append(cfg.journal_path())?;
        self.durability = Some(DurabilityState {
            journal,
            cfg,
            // The fault that felled the previous process must not re-fire
            // on this one — suppress durability rules up to and including
            // the resume index.
            suppress_faults_below: replayed + 1,
        });
        telemetry.event(
            "serve",
            "recovered",
            &[
                ("batches_replayed", &replayed),
                ("quarantine_restored", &quarantine_restored),
                ("checkpoints_verified", &checkpoints_verified),
                ("torn_tail_dropped", &scan.torn_tail),
            ],
        );
        Ok(RecoveryReport {
            batches_replayed: replayed,
            quarantine_restored,
            checkpoints_verified,
            torn_tail_dropped: scan.torn_tail,
        })
    }
}
