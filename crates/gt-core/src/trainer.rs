//! The GraphTensor framework: NAPA kernels + kernel orchestrator +
//! service-wide tensor scheduler, in the three build variants of §VI:
//!
//! * **Base-GT** — NAPA only (destination-centric feature-wise kernels);
//! * **Dynamic-GT** — Base + Dynamic Kernel Placement;
//! * **Prepro-GT** — Dynamic + the service-wide tensor scheduler.

use crate::config::ModelConfig;
use crate::data::GraphData;
use crate::framework::{BatchOutcome, BatchReport, FailReason, Framework, FrameworkTraits};
use crate::napa::{NeighborApply, Pull};
use crate::orchestrator::{apply_dkp, CostModel, DkpPair, DriftMonitor};
use crate::prepro::{run_prepro, PreproResult};
use crate::scheduler::{schedule_prepro_with_faults, PreproStrategy};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{ActiveFaults, SimContext, SystemSpec};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{Dfg, ExecCtx, Linear, ParamStore, Relu};
use gt_tensor::init::xavier;
use gt_tensor::loss::softmax_cross_entropy;
use gt_tensor::optim::{clip_grad_norm, Optimizer};
use std::sync::Arc;

pub use crate::orchestrator::dkp::DkpCounters;

/// Which GraphTensor build to run (§VI "Evaluation method").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GtVariant {
    /// NAPA, static aggregation-first placement, serialized preprocessing.
    Base,
    /// NAPA + DKP, serialized preprocessing.
    Dynamic,
    /// NAPA + DKP + service-wide tensor scheduling.
    Prepro,
}

impl GtVariant {
    fn label(self) -> &'static str {
        match self {
            GtVariant::Base => "Base-GT",
            GtVariant::Dynamic => "Dynamic-GT",
            GtVariant::Prepro => "Prepro-GT",
        }
    }
}

/// The GraphTensor trainer.
pub struct GraphTensor {
    /// Which of the three builds this instance is.
    pub variant: GtVariant,
    /// The GNN being trained.
    pub model: ModelConfig,
    /// Modeled system (GPU + host + PCIe).
    pub sys: SystemSpec,
    /// Sampling configuration (seed advances per batch).
    pub sampler: SamplerConfig,
    /// SGD learning rate (used when no [`GraphTensor::optimizer`] is set).
    pub lr: f32,
    /// Optional optimizer replacing plain SGD (momentum, Adam).
    pub optimizer: Option<Optimizer>,
    /// Optional global gradient-norm clip applied before each step.
    pub grad_clip: Option<f32>,
    /// Batches used for DKP cost-model calibration (first-epoch fitting).
    pub calibration_batches: usize,
    /// When set, abort a batch (no parameter update) instead of training
    /// through a failed transfer or an OOM — the serving supervisor turns
    /// such reports into retries/degradations. Off by default so the plain
    /// training path is unchanged.
    pub fail_fast: bool,
    /// Faults to apply to the *next* batch only (taken on use). Set by the
    /// serving supervisor from its [`gt_sim::FaultPlan`].
    pub injected: Option<ActiveFaults>,
    /// Overrides the variant's preprocessing strategy (the supervisor's
    /// pipelined→serialized degradation).
    pub prepro_override: Option<PreproStrategy>,
    /// Measured preprocessing work of the most recent batch, kept for the
    /// cluster supervisor: partitioning a batch across workers re-prices the
    /// same measured work per partition instead of re-running preprocessing.
    pub last_work: Option<crate::prepro::PreproWork>,
    /// Where spans, events, and metrics go. Defaults to the process-wide
    /// handle ([`gt_telemetry::global`], a null collector unless installed
    /// otherwise), so the uninstrumented path costs nothing; swap in
    /// [`gt_telemetry::Telemetry::recording`] to capture traces.
    pub telemetry: gt_telemetry::Telemetry,
    params: ParamStore,
    cost: Arc<CostModel>,
    counters: Arc<DkpCounters>,
    drift: Arc<DriftMonitor>,
    /// (decisions, mispredictions, refits) already emitted as counters.
    drift_emitted: (u64, u64, u64),
    batches_run: usize,
    params_ready: bool,
}

impl GraphTensor {
    /// Build a trainer; parameters initialize lazily on the first batch
    /// (they need the dataset's feature dimension).
    pub fn new(variant: GtVariant, model: ModelConfig, sys: SystemSpec) -> Self {
        let cost = Arc::new(CostModel::from_device(&sys.gpu));
        GraphTensor {
            variant,
            model,
            sampler: SamplerConfig::default(),
            sys,
            lr: 0.01,
            optimizer: None,
            grad_clip: None,
            calibration_batches: 3,
            fail_fast: false,
            injected: None,
            prepro_override: None,
            last_work: None,
            telemetry: gt_telemetry::global(),
            params: ParamStore::new(),
            cost,
            counters: Arc::new(DkpCounters::default()),
            drift: Arc::new(DriftMonitor::default()),
            drift_emitted: (0, 0, 0),
            batches_run: 0,
            params_ready: false,
        }
    }

    /// DKP decision counters (aggregation-first, combination-first).
    pub fn dkp_decisions(&self) -> (usize, usize) {
        self.counters.snapshot()
    }

    /// The shared DKP cost model (coefficients, fit error).
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// The DKP drift monitor (residual EWMA, misprediction/refit counts).
    pub fn drift_monitor(&self) -> &Arc<DriftMonitor> {
        &self.drift
    }

    /// Model parameters (for tests and checkpointing).
    pub fn params(&self) -> &ParamStore {
        &self.params
    }

    /// Replace the model parameters (checkpoint restore). The store must
    /// contain every weight/bias the model's layer names expect.
    pub fn set_params(&mut self, params: ParamStore) {
        for l in 0..self.model.layers {
            assert!(
                params.contains(&self.model.weight_name(l)),
                "checkpoint missing {}",
                self.model.weight_name(l)
            );
        }
        self.params = params;
        self.params_ready = true;
    }

    fn ensure_params(&mut self, feature_dim: usize) {
        if self.params_ready {
            return;
        }
        let mut in_dim = feature_dim;
        for l in 0..self.model.layers {
            let out = self.model.layer_out_dim(l);
            self.params.register(
                self.model.weight_name(l),
                xavier(in_dim, out, 0xC0FFEE + l as u64),
            );
            self.params
                .register(self.model.bias_name(l), Matrix::zeros(1, out));
            in_dim = out;
        }
        self.params_ready = true;
    }

    /// Construct the per-batch DFG from NAPA primitives (Fig 10) and note
    /// every Pull → MatMul pair for the orchestrator.
    fn build_dfg(&self, pr: &PreproResult) -> (Dfg, Vec<DkpPair>) {
        let mut dfg = Dfg::new();
        let mut pairs = Vec::new();
        let mut x = dfg.input(0);
        for l in 0..self.model.layers {
            let layer = Arc::clone(&pr.layers[l]);
            let pull_op;
            let pull_node;
            if let Some(ew) = self.model.edge {
                let na = dfg.op(NeighborApply::new(Arc::clone(&layer), ew.g), &[x]);
                pull_op = Pull::weighted(Arc::clone(&layer), self.model.agg, ew.h);
                pull_node = dfg.op(pull_op.clone(), &[x, na]);
            } else {
                pull_op = Pull::new(Arc::clone(&layer), self.model.agg);
                pull_node = dfg.op(pull_op.clone(), &[x]);
            }
            let w = self.model.weight_name(l);
            let b = self.model.bias_name(l);
            let lin = dfg.op(Linear::new(w.clone(), b.clone()), &[pull_node]);
            pairs.push(DkpPair {
                pull_node,
                linear_node: lin,
                pull: pull_op,
                weight: w,
                bias: Some(b),
                needs_input_grad: l > 0,
            });
            x = if l + 1 < self.model.layers {
                dfg.op(Relu, &[lin])
            } else {
                lin
            };
        }
        dfg.set_output(x);
        (dfg, pairs)
    }

    /// Train one step on the ENTIRE graph without sampling — the
    /// full-graph scenario GNNAdvisor targets (§VI-A). The whole embedding
    /// table and adjacency are charged to device memory, so graphs beyond
    /// the device capacity report OOM, reproducing the paper's scalability
    /// argument for sampling-based preprocessing.
    pub fn train_full_graph(&mut self, data: &GraphData) -> BatchReport {
        self.ensure_params(data.feature_dim());
        let _span = self
            .telemetry
            .span("train", "train_full_graph")
            .arg("variant", self.variant.label())
            .arg("vertices", data.num_vertices());
        let pr = crate::full_graph::full_graph_prepro(data, self.model.layers);
        let mut sim = SimContext::new(self.sys.gpu.clone());
        let _ = sim.memory.alloc(pr.features.bytes());
        // All layers share one resident structure.
        let _ = sim.memory.alloc(pr.layers[0].structure_bytes());

        let (mut dfg, pairs) = self.build_dfg(&pr);
        if self.variant != GtVariant::Base {
            apply_dkp(
                &mut dfg,
                pairs,
                &self.cost,
                false,
                &self.counters,
                Some(&self.drift),
            );
        }
        let all: Vec<VId> = (0..data.num_vertices() as VId).collect();
        let labels = data.batch_labels(&all);
        self.params.zero_grads();
        let loss = {
            let mut ctx = ExecCtx {
                sim: &mut sim,
                params: &mut self.params,
            };
            let values = dfg.forward(std::slice::from_ref(&pr.features), &mut ctx);
            let logits = values.get(dfg.output());
            let (loss, grad) = softmax_cross_entropy(logits, &labels);
            dfg.backward(&values, grad, &mut ctx);
            loss
        };
        self.optimizer_step();
        let oom = sim.memory.oom().map(|e| e.to_string());
        BatchReport {
            loss,
            sim,
            prepro: None,
            num_nodes: data.num_vertices(),
            num_edges: data.graph.num_edges(),
            oom,
            outcome: BatchOutcome::Succeeded,
            telemetry: self.telemetry.clone(),
        }
    }

    /// Forward-only inference on one batch: preprocess, run FWP, return the
    /// logits (row `i` = `batch[i]`). No gradients, no parameter update.
    pub fn infer_batch(&mut self, data: &GraphData, batch: &[VId]) -> Matrix {
        self.ensure_params(data.feature_dim());
        let _span = self
            .telemetry
            .span("train", "infer_batch")
            .arg("batch_size", batch.len());
        let mut cfg = self.sampler.clone();
        // Fixed offset, independent of training progress: inference must be
        // a pure function of (params, sampler config) so a trainer restored
        // from a checkpoint scores batches identically to the original.
        cfg.seed = cfg.seed.wrapping_add(0x1FE0);
        let pr = run_prepro(data, batch, &cfg);
        let mut sim = SimContext::new(self.sys.gpu.clone());
        let (dfg, pairs) = self.build_dfg(&pr);
        let mut dfg = dfg;
        if self.variant != GtVariant::Base {
            // Forward-only: the full decision cost is never observed, so no
            // drift monitor.
            apply_dkp(&mut dfg, pairs, &self.cost, false, &self.counters, None);
        }
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut self.params,
        };
        let values = dfg.forward(std::slice::from_ref(&pr.features), &mut ctx);
        values.get(dfg.output()).clone()
    }

    /// Apply the configured update rule to the accumulated gradients.
    fn optimizer_step(&mut self) {
        if let Some(max) = self.grad_clip {
            clip_grad_norm(&mut self.params, max);
        }
        match &mut self.optimizer {
            Some(opt) => opt.step(&mut self.params),
            None => self.params.sgd_step(self.lr),
        }
    }

    /// Publish the drift monitor's state: delta counters, the residual
    /// EWMA gauge, and one structured `dkp_decision` event per completed
    /// decision since the last batch.
    fn emit_drift_telemetry(&mut self, telemetry: &gt_telemetry::Telemetry) {
        let now = (
            self.drift.decisions(),
            self.drift.mispredictions(),
            self.drift.refits(),
        );
        let prev = self.drift_emitted;
        telemetry
            .counter(
                "gt_dkp_decisions_total",
                "DKP placement decisions with completed cost observation",
            )
            .add(now.0 - prev.0);
        telemetry
            .counter(
                "gt_dkp_mispredictions_total",
                "DKP decisions whose observed cost contradicted the predicted ordering",
            )
            .add(now.1 - prev.1);
        telemetry
            .counter(
                "gt_dkp_refits_total",
                "DKP cost-model refits triggered by drift",
            )
            .add(now.2 - prev.2);
        if let Some(e) = self.drift.ewma_ape() {
            telemetry
                .gauge(
                    "gt_dkp_residual_ewma",
                    "EWMA of the DKP |observed-predicted|/observed residual",
                )
                .set(e);
        }
        for r in self.drift.drain_recent() {
            let predicted = format!("{:.3}", r.predicted_us);
            let observed = format!("{:.3}", r.observed_us);
            let ape = format!("{:.4}", r.ape());
            let mispredicted = r.mispredicted().to_string();
            telemetry.event(
                "dkp",
                "dkp_decision",
                &[
                    ("placement", &r.placement.label()),
                    ("predicted_us", &predicted),
                    ("observed_us", &observed),
                    ("ape", &ape),
                    ("mispredicted", &mispredicted),
                ],
            );
        }
        if now.2 > prev.2 {
            let fit_error = self
                .cost
                .fit_error()
                .map_or_else(|| "none".to_string(), |e| format!("{e:.4}"));
            let fallback = self.cost.is_static_fallback().to_string();
            telemetry.event(
                "dkp",
                "dkp_refit",
                &[("fit_error", &fit_error), ("static_fallback", &fallback)],
            );
        }
        self.drift_emitted = now;
    }

    /// The preprocessing strategy in force (the override, if set, else the
    /// variant's default). The cluster supervisor uses this to price each
    /// worker's partition with the same scheduler the trainer ran.
    pub fn prepro_strategy(&self) -> PreproStrategy {
        if let Some(s) = self.prepro_override {
            return s;
        }
        match self.variant {
            // Base/Dynamic serialize S→R→K→T like DGL (§VI-B) but still
            // overlap whole batches with GPU compute.
            GtVariant::Base | GtVariant::Dynamic => PreproStrategy::Serial,
            GtVariant::Prepro => PreproStrategy::PipelinedRelaxed,
        }
    }
}

impl Framework for GraphTensor {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn traits(&self) -> FrameworkTraits {
        FrameworkTraits {
            initial_format: "CSR",
            memory_bloat: false,
            format_translation: false,
            cache_bloat: false,
            prepro_overhead: if self.variant == GtVariant::Prepro {
                'X'
            } else {
                'D'
            },
        }
    }

    fn overlaps_batches(&self) -> bool {
        true
    }

    fn train_batch(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport {
        let labels = data.batch_labels(batch);
        self.train_batch_with_loss(data, batch, |logits, _rows| {
            softmax_cross_entropy(logits, &labels)
        })
    }
}

impl GraphTensor {
    /// Train one batch under a caller-supplied loss. The closure receives
    /// the final-layer output (row `i` = the vertex whose *original* id is
    /// `rows[i]`; the batch occupies the first rows in order) and returns
    /// `(loss, ∂loss/∂output)`. This is how non-classification heads (e.g.
    /// BPR ranking for NGCF-style recommendation) plug in.
    pub fn train_batch_with_loss<L>(
        &mut self,
        data: &GraphData,
        batch: &[VId],
        loss_fn: L,
    ) -> BatchReport
    where
        L: FnOnce(&Matrix, &[VId]) -> (f32, Matrix),
    {
        self.ensure_params(data.feature_dim());
        let telemetry = self.telemetry.clone();
        let _batch_span = telemetry
            .span("train", "train_batch")
            .arg("variant", self.variant.label())
            .arg("batch", self.batches_run)
            .arg("batch_size", batch.len())
            .arg("layers", self.model.layers);
        let faults = self.injected.take().unwrap_or_default();
        let mut cfg = self.sampler.clone();
        cfg.seed = cfg.seed.wrapping_add(self.batches_run as u64);
        let pr = {
            let _s = telemetry.span("train", "run_prepro").arg("phase", "prepro");
            run_prepro(data, batch, &cfg)
        };
        self.last_work = Some(pr.work.clone());

        // The preprocessing schedule is a pure function of the measured
        // work, so it can run up front; with an empty fault set it is
        // bit-identical to the unsupervised schedule.
        let prepro = {
            let _s = telemetry
                .span("train", "schedule_prepro")
                .arg("phase", "prepro");
            schedule_prepro_with_faults(&pr.work, &self.sys, self.prepro_strategy(), &faults)
        };

        let mut gpu = self.sys.gpu.clone();
        if let Some(frac) = faults.memory_fraction() {
            gpu.device_mem_bytes = (gpu.device_mem_bytes as f64 * frac) as u64;
        }
        let mut sim = SimContext::new(gpu);
        // Input tensors land in device memory.
        let _ = sim.memory.alloc(pr.features.bytes());
        for l in &pr.layers {
            let _ = sim.memory.alloc(l.structure_bytes());
        }

        if self.fail_fast {
            let reason = if prepro.has_failures() {
                Some(FailReason::TransferFailure)
            } else if sim.memory.oom().is_some() {
                Some(FailReason::OutOfMemory)
            } else {
                None
            };
            if let Some(reason) = reason {
                // Abort before any parameter update: the supervisor will
                // retry or degrade, and a retried batch must see the same
                // seed, so `batches_run` stays untouched too.
                telemetry.event("train", "fail_fast", &[("reason", &reason.label())]);
                let oom = sim.memory.oom().map(|e| e.to_string());
                return BatchReport {
                    loss: f32::NAN,
                    sim,
                    prepro: Some(prepro),
                    num_nodes: pr.work.total_nodes as usize,
                    num_edges: pr.layers.iter().map(|l| l.csr.num_edges()).sum(),
                    oom,
                    outcome: BatchOutcome::Failed { reason },
                    telemetry: telemetry.clone(),
                };
            }
        }

        let (mut dfg, pairs) = self.build_dfg(&pr);
        if self.variant != GtVariant::Base {
            let calibrate = self.batches_run < self.calibration_batches;
            let (af0, cf0) = self.counters.snapshot();
            apply_dkp(
                &mut dfg,
                pairs,
                &self.cost,
                calibrate,
                &self.counters,
                Some(&self.drift),
            );
            let (af, cf) = self.counters.snapshot();
            telemetry
                .counter(
                    "gt_dkp_aggregation_first_total",
                    "DKP pairs placed aggregation-first",
                )
                .add((af - af0) as u64);
            telemetry
                .counter(
                    "gt_dkp_combination_first_total",
                    "DKP pairs placed combination-first",
                )
                .add((cf - cf0) as u64);
        }

        self.params.zero_grads();
        let (loss, num_edges) = {
            let _s = telemetry
                .span("train", "forward_backward")
                .arg("layers", self.model.layers);
            let mut ctx = ExecCtx {
                sim: &mut sim,
                params: &mut self.params,
            };
            let values = dfg.forward(std::slice::from_ref(&pr.features), &mut ctx);
            let logits = values.get(dfg.output());
            let (loss, grad) = loss_fn(logits, &pr.new_to_orig);
            let _ = sim_loss_record(ctx.sim, logits);
            dfg.backward(&values, grad, &mut ctx);
            (loss, pr.layers.iter().map(|l| l.csr.num_edges()).sum())
        };

        if self.fail_fast {
            if let Some(oom) = sim.memory.oom() {
                // Intermediates blew the budget mid-compute: do not commit
                // the parameter update (gradients are zeroed at the start of
                // the next attempt, so nothing leaks into it).
                telemetry.event(
                    "train",
                    "fail_fast",
                    &[("reason", &FailReason::OutOfMemory.label())],
                );
                return BatchReport {
                    loss: f32::NAN,
                    sim,
                    prepro: Some(prepro),
                    num_nodes: pr.work.total_nodes as usize,
                    num_edges,
                    oom: Some(oom.to_string()),
                    outcome: BatchOutcome::Failed {
                        reason: FailReason::OutOfMemory,
                    },
                    telemetry: telemetry.clone(),
                };
            }
        }
        {
            let _s = telemetry.span("train", "optimizer_step");
            self.optimizer_step();
        }

        self.batches_run += 1;
        if self.variant != GtVariant::Base && self.batches_run == self.calibration_batches {
            // First-epoch least-squares fit of the DKP cost model (§V-A).
            let _ = self.cost.fit();
        }
        if self.variant != GtVariant::Base {
            self.emit_drift_telemetry(&telemetry);
        }

        let oom = sim.memory.oom().map(|e| e.to_string());
        let report = BatchReport {
            loss,
            sim,
            prepro: Some(prepro),
            num_nodes: pr.work.total_nodes as usize,
            num_edges,
            oom,
            outcome: BatchOutcome::Succeeded,
            telemetry: telemetry.clone(),
        };
        telemetry
            .counter("gt_train_batches_total", "Training batches completed")
            .inc();
        telemetry
            .histogram_us(
                "gt_batch_e2e_us",
                "End-to-end batch latency (overlapped), µs",
            )
            .observe(report.e2e_us(true));
        telemetry
            .histogram_us("gt_prepro_makespan_us", "Preprocessing makespan, µs")
            .observe(report.prepro_us());
        telemetry
            .counter("gt_transfer_bytes_total", "Bytes moved over PCIe")
            .add(pr.work.total_feature_bytes + pr.work.total_structure_bytes());
        report
    }
}

/// Charge the loss kernel (elementwise over the batch logits).
fn sim_loss_record(sim: &mut SimContext, logits: &Matrix) -> f64 {
    sim.record_gpu(
        gt_sim::Phase::Loss,
        gt_sim::KernelStats {
            flops: 4 * logits.len() as u64,
            global_read_bytes: logits.bytes(),
            global_write_bytes: logits.bytes(),
            launches: 1,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sample::BatchIter;
    use gt_sim::Phase;

    fn data() -> GraphData {
        GraphData::synthetic(300, 3000, 16, 4, 3)
    }

    fn trainer(variant: GtVariant, model: ModelConfig) -> GraphTensor {
        let mut t = GraphTensor::new(variant, model, SystemSpec::tiny());
        t.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 11,
            ..Default::default()
        };
        t
    }

    #[test]
    fn gcn_loss_decreases_over_batches() {
        let d = GraphData::synthetic_learnable(300, 3000, 16, 2, 3);
        let mut t = trainer(GtVariant::Base, ModelConfig::gcn(2, 16, 2));
        t.lr = 0.3;
        let batches: Vec<Vec<VId>> = BatchIter::new(300, 32, 5).take(8).collect();
        // Sampled minibatches are noisy; compare epoch-average losses.
        let epoch = |t: &mut GraphTensor| -> f32 {
            batches
                .iter()
                .map(|b| t.train_batch(&d, b).loss)
                .sum::<f32>()
                / batches.len() as f32
        };
        let first = epoch(&mut t);
        let mut last = first;
        for _ in 0..6 {
            last = epoch(&mut t);
        }
        assert!(
            last < first * 0.9,
            "loss did not improve: first epoch {first}, last epoch {last}"
        );
    }

    #[test]
    fn ngcf_trains_and_charges_edge_weighting() {
        let d = data();
        let mut t = trainer(GtVariant::Base, ModelConfig::ngcf(2, 16, 4));
        let r = t.train_batch(&d, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(r.loss.is_finite());
        assert!(r.phase_us(Phase::EdgeWeighting) > 0.0);
        assert!(r.phase_us(Phase::Aggregation) > 0.0);
        assert!(r.phase_us(Phase::Combination) > 0.0);
    }

    #[test]
    fn dynamic_matches_base_numerics() {
        let d = data();
        let mut base = trainer(GtVariant::Base, ModelConfig::gcn(2, 16, 4));
        let mut dynamic = trainer(GtVariant::Dynamic, ModelConfig::gcn(2, 16, 4));
        let batch: Vec<VId> = (0..16).collect();
        let rb = base.train_batch(&d, &batch);
        let rd = dynamic.train_batch(&d, &batch);
        assert!(
            (rb.loss - rd.loss).abs() < 1e-4,
            "base {} vs dynamic {}",
            rb.loss,
            rd.loss
        );
        let (af, cf) = dynamic.dkp_decisions();
        assert_eq!(af + cf, 2, "one decision per layer");
        assert_eq!(base.dkp_decisions(), (0, 0));
    }

    #[test]
    fn calibration_fits_after_configured_batches() {
        let d = data();
        let mut t = trainer(GtVariant::Dynamic, ModelConfig::gcn(2, 16, 4));
        t.calibration_batches = 2;
        let batch: Vec<VId> = (0..8).collect();
        t.train_batch(&d, &batch);
        assert!(t.cost_model().fit_error().is_none());
        t.train_batch(&d, &batch);
        assert!(t.cost_model().fit_error().is_some());
        let err = t.cost_model().fit_error().unwrap();
        assert!(err < 0.5, "fit error too large: {err}");
    }

    #[test]
    fn prepro_variant_schedules_pipeline() {
        // Large enough that transfers and sampling dominate chunk overheads.
        let d = GraphData::synthetic(2000, 40_000, 256, 4, 3);
        let mut serial = trainer(GtVariant::Dynamic, ModelConfig::gcn(2, 16, 4));
        let mut pipe = trainer(GtVariant::Prepro, ModelConfig::gcn(2, 16, 4));
        serial.sampler.fanout = 10;
        pipe.sampler.fanout = 10;
        let batch: Vec<VId> = (0..300).collect();
        let rs = serial.train_batch(&d, &batch);
        let rp = pipe.train_batch(&d, &batch);
        assert!(
            rp.prepro_us() < rs.prepro_us(),
            "pipelined {} !< serial {}",
            rp.prepro_us(),
            rs.prepro_us()
        );
    }

    #[test]
    fn no_bloat_counters_for_napa() {
        let d = data();
        let mut t = trainer(GtVariant::Base, ModelConfig::ngcf(2, 16, 4));
        let r = t.train_batch(&d, &[0, 1, 2, 3]);
        // NAPA performs no sparse→dense conversion and no translation.
        assert_eq!(r.phase_us(Phase::Sparse2Dense), 0.0);
        assert_eq!(r.phase_us(Phase::FormatTranslation), 0.0);
        assert!(r.oom.is_none());
    }

    #[test]
    fn report_shapes_are_consistent() {
        let d = data();
        let mut t = trainer(GtVariant::Prepro, ModelConfig::gcn(2, 16, 4));
        let r = t.train_batch(&d, &[0, 1, 2, 3, 4]);
        assert!(r.num_nodes >= 5);
        assert!(r.num_edges >= r.num_nodes); // self-loops guarantee ≥
        assert!(r.gpu_us() > 0.0);
        assert!(r.e2e_us(true) <= r.e2e_us(false));
    }
}

#[cfg(test)]
mod optimizer_tests {
    use super::*;
    use gt_sample::SamplerConfig;

    #[test]
    fn adam_trains_through_the_pipeline() {
        let d = GraphData::synthetic_learnable(200, 1600, 8, 2, 5);
        let mut t = GraphTensor::new(
            GtVariant::Dynamic,
            ModelConfig::gcn(2, 8, 2),
            SystemSpec::tiny(),
        );
        t.sampler = SamplerConfig {
            fanout: 3,
            layers: 2,
            seed: 4,
            ..Default::default()
        };
        t.optimizer = Some(Optimizer::adam(0.05));
        t.grad_clip = Some(5.0);
        let batch: Vec<VId> = (0..40).collect();
        let first = t.train_batch(&d, &batch).loss;
        let mut last = first;
        for _ in 0..20 {
            last = t.train_batch(&d, &batch).loss;
        }
        assert!(last < first, "Adam did not descend: {first} → {last}");
    }

    #[test]
    fn momentum_matches_sgd_shape() {
        let d = GraphData::synthetic_learnable(200, 1600, 8, 2, 5);
        let run = |opt: Option<Optimizer>| {
            let mut t = GraphTensor::new(
                GtVariant::Base,
                ModelConfig::gcn(2, 8, 2),
                SystemSpec::tiny(),
            );
            t.sampler = SamplerConfig {
                fanout: 3,
                layers: 2,
                seed: 4,
                ..Default::default()
            };
            t.lr = 0.2;
            t.optimizer = opt;
            let batch: Vec<VId> = (0..40).collect();
            let mut last = 0.0;
            for _ in 0..15 {
                last = t.train_batch(&d, &batch).loss;
            }
            last
        };
        let sgd = run(None);
        let mom = run(Some(Optimizer::momentum(0.05, 0.9)));
        assert!(sgd.is_finite() && mom.is_finite());
        assert!(sgd < 0.7 && mom < 0.7, "sgd {sgd}, momentum {mom}");
    }
}
