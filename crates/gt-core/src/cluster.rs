//! Fault-tolerant distributed execution over a simulated worker cluster.
//!
//! The [`ClusterSupervisor`] generalizes single-node serving to N modeled
//! workers (a [`gt_sim::ClusterSpec`]): every batch's measured
//! preprocessing work is partitioned across the alive workers, each
//! partition's S/R/K/T + NAPA subtasks are priced through that worker's own
//! DES instance, and ring all-gather/all-reduce collectives are charged on
//! the modeled network link. On top sits a robustness layer:
//!
//! * **Heartbeat failure detection** — a deterministic [`PhiDetector`] per
//!   worker, fed one virtual-time heartbeat per batch. `WorkerKill` faults
//!   are *detected* after the detector's confirm delay, never assumed.
//! * **Straggler hedging** — when a worker's stage time exceeds
//!   [`ClusterConfig::hedge_factor`] × the median, its partition is
//!   speculatively re-executed on the fastest peer; first completion wins,
//!   with a deterministic lowest-index tiebreak. Every hedge is journaled
//!   write-ahead, so the `gt_cluster_hedges_*` counters reconcile exactly
//!   against the journal.
//! * **Partition re-replay recovery** — a killed worker's partition is
//!   adopted by the lowest-index survivor and the serving state is rebuilt
//!   by deterministic journal replay ([`Supervisor::recover`]), resuming at
//!   the exact batch index the kill interrupted.
//!
//! Everything above is traced: every batch becomes a root span on a
//! `cluster` coordinator process linked by flow arrows to per-worker
//! envelope spans (one Perfetto process per worker, wrapping that worker's
//! own S/R/K/T + NAPA subtask slices), hedge executions, heartbeat
//! suspicions, and recovery re-replays — see
//! [`ClusterSupervisor::cluster_traces`]. With
//! [`ClusterSupervisor::enable_tracing`] armed, recoveries and hedge wins
//! also freeze flight-recorder dumps (`cluster-recovery:<worker>`,
//! `hedge-won:<batch>`).
//!
//! **The bit-identity contract.** Numerics (parameters, journal records,
//! checkpoints) flow through exactly one inner [`Supervisor`] regardless of
//! worker count: partitioning, collectives, heartbeats, hedges, and
//! recovery all live in modeled virtual time. A run with any worker count,
//! any `GT_THREADS` width, killed or fault-free, hedged or not, therefore
//! produces byte-identical model state — the cluster layer only changes
//! what the virtual clock reads.

use crate::data::GraphData;
use crate::error::GtError;
use crate::framework::BatchReport;
use crate::journal;
use crate::prepro::{HopWork, PreproWork};
use crate::scheduler::build_prepro_sim;
use crate::serve::{DurabilityConfig, Supervisor};
use crate::tracing::TracerConfig;
use gt_graph::VId;
use gt_sim::{
    schedule_to_trace, worker_process, ActiveFaults, ClusterSpec, FaultKind, HeartbeatConfig,
    Phase, PhiDetector, Resource, Schedule, TaskSpec,
};
use gt_telemetry::{Json, Trace, TraceContext};

/// Seed all cluster trace/span identities derive from (hash input, not
/// RNG): batch root spans, per-worker flow arrows, hedge and recovery
/// flows are all pure functions of `(CLUSTER_TRACE_SEED, batch_index)`.
const CLUSTER_TRACE_SEED: u64 = 0x6774_636c; // "gtcl"

/// How a batch's preprocessing work is split across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Vertex cut: each worker owns a near-equal share of the sampled
    /// nodes, so every per-hop quantity (sampling ops, reindex ops, edges,
    /// structure and feature bytes) scales with the node share.
    VertexCut,
    /// NeutronTP-style feature-dimension tensor split: the feature matrix
    /// is sliced along the embedding dimension, so feature bytes divide by
    /// the partition count while structure work is replicated on every
    /// worker.
    FeatureDim,
}

impl Partition {
    /// Stable label for reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            Partition::VertexCut => "vertex-cut",
            Partition::FeatureDim => "feature-dim",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<Partition> {
        match s {
            "vertex-cut" => Some(Partition::VertexCut),
            "feature-dim" => Some(Partition::FeatureDim),
            _ => None,
        }
    }
}

/// Cluster topology + robustness policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker specs and the fabric connecting them.
    pub spec: ClusterSpec,
    /// Work partitioning strategy.
    pub partition: Partition,
    /// Heartbeat protocol parameters (detector per worker).
    pub heartbeat: HeartbeatConfig,
    /// Launch a backup when a worker's stage time exceeds `hedge_factor ×`
    /// the median stage time.
    pub hedging: bool,
    /// The straggler multiple that triggers a hedge.
    pub hedge_factor: f64,
}

impl ClusterConfig {
    /// Hedging on at 2.5× median, default heartbeats, over `spec`.
    pub fn new(spec: ClusterSpec, partition: Partition) -> Self {
        ClusterConfig {
            spec,
            partition,
            heartbeat: HeartbeatConfig::default(),
            hedging: true,
            hedge_factor: 2.5,
        }
    }
}

/// Modeled per-worker utilization, accumulated across batches.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerStats {
    /// Virtual µs the worker's resources spent executing subtasks.
    pub busy_us: f64,
    /// Virtual µs the worker idled waiting at the collective barrier.
    pub idle_us: f64,
    /// Virtual µs the worker's network link was occupied by ring
    /// collectives (every member's link is held for the whole collective —
    /// the ring moves at its slowest hop).
    pub link_us: f64,
}

/// Deterministic modeled metrics of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Worker count (including dead workers).
    pub workers: usize,
    /// Batches the inner supervisor has served.
    pub batches: usize,
    /// Total virtual time on the cluster clock, µs.
    pub clock_us: f64,
    /// Virtual µs spent in all-gather/all-reduce collectives.
    pub collective_us: f64,
    /// Virtual µs spent detecting failures and replaying partitions.
    pub recovery_virtual_us: f64,
    /// Hedges launched (one journal record each).
    pub hedges_launched: u64,
    /// Hedges whose backup strictly beat the straggler.
    pub hedges_won: u64,
    /// Heartbeat silences that crossed the phi threshold on a live worker.
    pub false_suspicions: u64,
    /// Supervisor rebuild-and-replay recoveries (kills + injected crashes).
    pub recoveries: u64,
    /// Per-worker busy time, µs.
    pub worker_busy_us: Vec<f64>,
    /// Per-worker idle time, µs.
    pub worker_idle_us: Vec<f64>,
    /// Per-worker link occupancy in collectives, µs.
    pub worker_link_us: Vec<f64>,
}

/// Distributed serving supervisor: partitions batches across a simulated
/// worker cluster and survives worker kills, stragglers, and crashes. See
/// the module docs for the execution and bit-identity model.
pub struct ClusterSupervisor {
    /// Topology + policy.
    pub config: ClusterConfig,
    /// The single inner supervisor carrying all numerics. Public so tests
    /// and experiments can inspect parameters, quarantine, and plan.
    pub supervisor: Supervisor,
    /// Rebuilds a supervisor configured exactly like the original (same
    /// trainer settings, same fault plan) — invoked on every recovery, as
    /// after a real process kill.
    rebuild: Box<dyn Fn() -> Supervisor>,
    durability: Option<DurabilityConfig>,
    /// Liveness per worker.
    alive: Vec<bool>,
    /// `owner[p]` = worker currently executing partition `p`. Partitions
    /// are 1:1 with workers at start; kills reassign them.
    owner: Vec<usize>,
    detectors: Vec<PhiDetector>,
    stats: Vec<WorkerStats>,
    clock_us: f64,
    collective_us: f64,
    recovery_virtual_us: f64,
    hedges_launched: u64,
    hedges_won: u64,
    false_suspicions: u64,
    recoveries: u64,
    /// EMA of recent stage makespans: the deterministic per-batch cost used
    /// to price journal replay during recovery.
    stage_ema_us: f64,
    /// Cluster kills below this batch index already felled a previous
    /// incarnation and must not re-fire (mirrors the inner supervisor's
    /// durability-fault suppression).
    suppress_kills_below: usize,
    /// Per-worker DES schedules of the most recent priced batch, for
    /// Perfetto export via [`gt_sim::cluster_to_traces`].
    last_schedules: Vec<(usize, Schedule)>,
    /// Accumulated coordinator-process trace: batch root spans, collective
    /// slices, hedge/suspicion/recovery events, and the origin of every
    /// cross-process flow arrow.
    coordinator_trace: Trace,
    /// Accumulated per-worker process traces: batch envelope spans (flow
    /// destinations), the worker's own DES subtask slices offset onto the
    /// cluster clock, hedge executions, and lifecycle instants.
    worker_traces: Vec<Trace>,
    /// Tracer config re-armed on the fresh supervisor after every rebuild
    /// (the factory constructs untraced supervisors).
    tracer_config: Option<TracerConfig>,
}

impl ClusterSupervisor {
    /// Wrap the supervisor produced by `factory` in the cluster layer.
    /// `factory` must be a pure constructor: every call yields a
    /// supervisor with identical configuration (trainer settings, serve
    /// config, fault plan), because recovery discards the current one and
    /// replays the journal through a fresh instance.
    pub fn new(factory: impl Fn() -> Supervisor + 'static, config: ClusterConfig) -> Self {
        let n = config.spec.len();
        let supervisor = factory();
        ClusterSupervisor {
            supervisor,
            rebuild: Box::new(factory),
            durability: None,
            alive: vec![true; n],
            owner: (0..n).collect(),
            detectors: vec![PhiDetector::new(config.heartbeat.clone()); n],
            stats: vec![WorkerStats::default(); n],
            clock_us: 0.0,
            collective_us: 0.0,
            recovery_virtual_us: 0.0,
            hedges_launched: 0,
            hedges_won: 0,
            false_suspicions: 0,
            recoveries: 0,
            stage_ema_us: 0.0,
            suppress_kills_below: 0,
            last_schedules: Vec::new(),
            coordinator_trace: Trace::new("cluster"),
            worker_traces: (0..n).map(|w| Trace::new(worker_process(w))).collect(),
            tracer_config: None,
            config,
        }
    }

    /// Arm the inner supervisor's request tracer (and re-arm it with the
    /// same config after every rebuild-and-replay recovery, since the
    /// factory constructs untraced supervisors). From now on cluster
    /// events freeze flight dumps: `cluster-recovery:<worker>` when a
    /// worker's partition is re-replayed, `hedge-won:<batch>` when a
    /// hedged backup beats its straggler.
    pub fn enable_tracing(&mut self, config: TracerConfig) {
        self.supervisor.enable_tracing(config.clone(), None);
        self.tracer_config = Some(config);
    }

    /// Turn on durability (journal + checkpoints under `cfg.dir`). Required
    /// before serving: recovery is the whole point of the cluster layer.
    pub fn make_durable(&mut self, cfg: DurabilityConfig) -> Result<(), GtError> {
        self.supervisor.make_durable(cfg.clone())?;
        self.durability = Some(cfg);
        Ok(())
    }

    /// Liveness per worker.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Current owner of each partition.
    pub fn owners(&self) -> &[usize] {
        &self.owner
    }

    /// Per-worker DES schedules of the most recent priced batch (empty
    /// until a batch trains). Feed to [`gt_sim::cluster_to_traces`] for
    /// one Perfetto process per worker.
    pub fn last_schedules(&self) -> &[(usize, Schedule)] {
        &self.last_schedules
    }

    /// The accumulated cross-worker Perfetto trace: the `cluster`
    /// coordinator process first, then one process per worker. Every
    /// batch's root span on the coordinator is linked by flow arrows to
    /// the per-worker executions it fanned out to (and to hedge backups
    /// and recovery re-replays), so skew is visible across processes.
    /// Feed to [`gt_telemetry::write_chrome_json`]; bit-identical across
    /// `GT_THREADS` widths because every timestamp is virtual.
    pub fn cluster_traces(&self) -> Vec<&Trace> {
        let mut out = Vec::with_capacity(1 + self.worker_traces.len());
        out.push(&self.coordinator_trace);
        out.extend(self.worker_traces.iter());
        out
    }

    /// The worker that coordinates (and journal-tags) `batch_index`:
    /// partitions rotate coordination round-robin, so journal records
    /// interleave worker tags while staying strictly increasing per tag.
    pub fn batch_owner(&self, batch_index: usize) -> usize {
        self.owner[batch_index % self.owner.len()]
    }

    /// Deterministic modeled metrics so far.
    pub fn summary(&self) -> ClusterSummary {
        ClusterSummary {
            workers: self.config.spec.len(),
            batches: self.supervisor.batches_served(),
            clock_us: self.clock_us,
            collective_us: self.collective_us,
            recovery_virtual_us: self.recovery_virtual_us,
            hedges_launched: self.hedges_launched,
            hedges_won: self.hedges_won,
            false_suspicions: self.false_suspicions,
            recoveries: self.recoveries,
            worker_busy_us: self.stats.iter().map(|s| s.busy_us).collect(),
            worker_idle_us: self.stats.iter().map(|s| s.idle_us).collect(),
            worker_link_us: self.stats.iter().map(|s| s.link_us).collect(),
        }
    }

    /// Count `(launched, won)` hedges recorded in the journal — the
    /// ground truth the in-memory counters must reconcile against.
    pub fn hedge_journal_counts(&self) -> Result<(u64, u64), GtError> {
        let cfg = self.durability.as_ref().ok_or_else(|| GtError::Io {
            detail: "hedge_journal_counts before make_durable".to_string(),
        })?;
        let scan = journal::read_journal(cfg.journal_path())?;
        let mut launched = 0;
        let mut won = 0;
        for rec in &scan.records {
            if journal::record_type(rec) == Some("hedge") {
                if let Some((_, _, backup_won)) = journal::hedge_fields(rec) {
                    launched += 1;
                    won += u64::from(backup_won);
                }
            }
        }
        Ok((launched, won))
    }

    /// Serve one batch across the cluster: detect kills, recover, serve
    /// the numerics through the inner supervisor, price the distributed
    /// schedule (partitions, hedging, collectives), and advance the
    /// virtual clock.
    ///
    /// Returns `Ok(None)` when a crash hit *after* the batch committed:
    /// recovery replayed the batch to completion, so it is already folded
    /// into the serving state and must not be re-served. Drive loops by
    /// [`Supervisor::batches_served`], not by counting calls.
    pub fn serve_batch(
        &mut self,
        data: &GraphData,
        batch: &[VId],
    ) -> Result<Option<BatchReport>, GtError> {
        let batch_index = self.supervisor.batches_served();
        let active = if self.supervisor.plan.is_empty() {
            ActiveFaults::default()
        } else {
            self.supervisor.plan.active(batch_index, 0)
        };

        self.heartbeat_round(&active);
        self.handle_kills(data, batch_index, &active)?;

        let coordinator = self.batch_owner(batch_index);
        self.supervisor.set_worker_tag(Some(coordinator));
        let report = self.serve_with_crash_recovery(data, batch, batch_index)?;

        if let Some(report) = &report {
            if report.outcome.trained() {
                self.price_batch(batch_index, report, &active)?;
            }
        }
        Ok(report)
    }

    /// One virtual heartbeat round: every live worker beats once. Dropped
    /// beats widen the observed gap; a live worker whose widened gap
    /// crosses the phi threshold is a *false* suspicion (counted, never
    /// acted on — the next beat exonerates it).
    fn heartbeat_round(&mut self, active: &ActiveFaults) {
        let telemetry = self.supervisor.trainer.telemetry.clone();
        for w in 0..self.config.spec.len() {
            if !self.alive[w] {
                continue;
            }
            let dropped = active.heartbeat_drops(w);
            let gap = self.config.heartbeat.interval_us * f64::from(1 + dropped);
            if dropped > 0 && self.detectors[w].suspects(gap) {
                self.false_suspicions += 1;
                telemetry
                    .counter(
                        "gt_cluster_false_suspicions_total",
                        "Live workers suspected dead from dropped heartbeats",
                    )
                    .inc();
                telemetry.event(
                    "cluster",
                    "false_suspicion",
                    &[("worker", &w), ("gap_us", &gap)],
                );
                self.coordinator_trace.instant(
                    "heartbeats",
                    format!("suspect worker {w}"),
                    "cluster",
                    self.clock_us,
                    vec![
                        ("worker".to_string(), Json::from(w)),
                        ("gap_us".to_string(), Json::from(gap)),
                    ],
                );
            }
            self.detectors[w].observe(gap);
        }
    }

    /// Apply active `WorkerKill` faults: mark victims dead, reassign their
    /// partitions to the lowest-index survivor, charge the detector's
    /// confirm delay plus modeled replay time, and rebuild the serving
    /// state by deterministic journal replay.
    fn handle_kills(
        &mut self,
        data: &GraphData,
        batch_index: usize,
        active: &ActiveFaults,
    ) -> Result<(), GtError> {
        if batch_index < self.suppress_kills_below {
            return Ok(());
        }
        let n = self.config.spec.len();
        let mut killed: Vec<usize> = active
            .worker_kills()
            .into_iter()
            .map(|w| w % n)
            .filter(|&w| self.alive[w])
            .collect();
        killed.sort_unstable();
        killed.dedup();
        if killed.is_empty() {
            return Ok(());
        }
        let telemetry = self.supervisor.trainer.telemetry.clone();
        let mut detect_us = 0.0f64;
        for &w in &killed {
            self.alive[w] = false;
            detect_us = detect_us.max(self.detectors[w].confirm_delay_us());
        }
        if !self.alive.iter().any(|&a| a) {
            // Total outage: the lowest-index worker restarts in place, as a
            // real deployment's process manager would.
            self.alive[0] = true;
        }
        let adopter = self.alive.iter().position(|&a| a).expect("one alive");
        for p in 0..self.owner.len() {
            if !self.alive[self.owner[p]] {
                self.owner[p] = adopter;
            }
        }
        for &w in &killed {
            // A restarted incarnation's detector starts fresh.
            self.detectors[w] = PhiDetector::new(self.config.heartbeat.clone());
            telemetry.event(
                "cluster",
                "worker_killed",
                &[
                    ("worker", &w),
                    ("batch", &batch_index),
                    ("adopter", &adopter),
                ],
            );
            self.worker_traces[w].instant(
                "lifecycle",
                "killed",
                "cluster",
                self.clock_us,
                vec![
                    ("batch".to_string(), Json::from(batch_index)),
                    ("adopter".to_string(), Json::from(adopter)),
                ],
            );
        }
        let replayed = self.recover_now(data, batch_index)?;
        if replayed != batch_index {
            return Err(GtError::ReplayDiverged {
                batch_index,
                detail: format!(
                    "kill recovery replayed {replayed} batches, expected {batch_index}"
                ),
            });
        }
        let replay_us = replayed as f64 * self.stage_ema_us;
        self.recovery_virtual_us += detect_us + replay_us;
        self.suppress_kills_below = batch_index + 1;
        telemetry
            .counter(
                "gt_cluster_recovery_us_total",
                "Virtual µs spent detecting failures and replaying partitions",
            )
            .add((detect_us + replay_us) as u64);
        // The re-replay is a child of this batch in the cross-worker trace:
        // a recovery slice on the coordinator, flow-linked to the adopter's
        // process, one flow per killed worker.
        let ctx = TraceContext::for_request(CLUSTER_TRACE_SEED, batch_index);
        let n2 = 2 * self.config.spec.len();
        self.coordinator_trace.duration(
            "recovery",
            format!("re-replay batch #{batch_index}"),
            "cluster",
            self.clock_us,
            detect_us + replay_us,
            vec![
                ("killed".to_string(), Json::from(format!("{killed:?}"))),
                ("adopter".to_string(), Json::from(adopter)),
                ("batches_replayed".to_string(), Json::from(replayed)),
                ("detect_us".to_string(), Json::from(detect_us)),
                ("replay_us".to_string(), Json::from(replay_us)),
            ],
        );
        for &w in &killed {
            let flow_id = ctx.span_id(n2 + w);
            self.coordinator_trace
                .flow_start("recovery", "re-replay", self.clock_us, flow_id);
            self.worker_traces[adopter].flow_finish(
                "lifecycle",
                "re-replay",
                self.clock_us,
                flow_id,
            );
        }
        for &w in &killed {
            if let Some(tracer) = self.supervisor.tracer.as_mut() {
                tracer.dump_now(&format!("cluster-recovery:{w}"));
            }
        }
        Ok(())
    }

    /// Discard the supervisor, rebuild it from the factory, and replay the
    /// journal — the exact protocol a survivor follows when adopting a dead
    /// worker's partition. Returns the number of batches replayed.
    fn recover_now(&mut self, data: &GraphData, batch_index: usize) -> Result<usize, GtError> {
        let cfg = self.durability.clone().ok_or_else(|| GtError::Io {
            detail: "cluster recovery before make_durable".to_string(),
        })?;
        let mut fresh = (self.rebuild)();
        if let Some(tc) = &self.tracer_config {
            fresh.enable_tracing(tc.clone(), None);
        }
        let rec = fresh.recover(data, cfg)?;
        self.supervisor = fresh;
        self.recoveries += 1;
        // The rebuilt counters are process-local state; the journal is the
        // ground truth hedges are restored from.
        let (launched, won) = self.hedge_journal_counts()?;
        self.hedges_launched = launched;
        self.hedges_won = won;
        self.supervisor
            .trainer
            .telemetry
            .counter(
                "gt_cluster_recoveries_total",
                "Supervisor rebuild-and-replay recoveries",
            )
            .inc();
        self.supervisor.trainer.telemetry.event(
            "cluster",
            "recovered",
            &[
                ("batch", &batch_index),
                ("batches_replayed", &rec.batches_replayed),
            ],
        );
        Ok(rec.batches_replayed)
    }

    /// `serve_durable` with crash handling: an injected crash (or storage
    /// fault) kills the owning worker's process mid-batch; the cluster
    /// rebuilds and replays, then re-serves the batch unless the journal
    /// shows it already committed (an after-commit crash).
    fn serve_with_crash_recovery(
        &mut self,
        data: &GraphData,
        batch: &[VId],
        batch_index: usize,
    ) -> Result<Option<BatchReport>, GtError> {
        // Bounded: each recovery suppresses the fault that fired, so the
        // loop can only iterate once per distinct durability rule.
        for _ in 0..8 {
            match self.supervisor.serve_durable(data, batch) {
                Ok(report) => return Ok(Some(report)),
                Err(GtError::InjectedCrash { .. }) | Err(GtError::Io { .. }) => {
                    let owner = self.batch_owner(batch_index);
                    let replayed = self.recover_now(data, batch_index)?;
                    let replay_us = replayed as f64 * self.stage_ema_us;
                    let detect_us = self.detectors[owner].confirm_delay_us();
                    self.recovery_virtual_us += detect_us + replay_us;
                    self.supervisor
                        .trainer
                        .telemetry
                        .counter(
                            "gt_cluster_recovery_us_total",
                            "Virtual µs spent detecting failures and replaying partitions",
                        )
                        .add((detect_us + replay_us) as u64);
                    let ctx = TraceContext::for_request(CLUSTER_TRACE_SEED, batch_index);
                    let n3 = 3 * self.config.spec.len();
                    self.coordinator_trace.duration(
                        "recovery",
                        format!("re-replay batch #{batch_index} (crash)"),
                        "cluster",
                        self.clock_us,
                        detect_us + replay_us,
                        vec![
                            ("worker".to_string(), Json::from(owner)),
                            ("batches_replayed".to_string(), Json::from(replayed)),
                        ],
                    );
                    let flow_id = ctx.span_id(n3 + owner);
                    self.coordinator_trace.flow_start(
                        "recovery",
                        "re-replay",
                        self.clock_us,
                        flow_id,
                    );
                    self.worker_traces[owner].flow_finish(
                        "lifecycle",
                        "re-replay",
                        self.clock_us,
                        flow_id,
                    );
                    if let Some(tracer) = self.supervisor.tracer.as_mut() {
                        tracer.dump_now(&format!("cluster-recovery:{owner}"));
                    }
                    if replayed == batch_index + 1 {
                        // The crash hit after the journal committed: the
                        // batch is durable and replay already trained it.
                        // Re-serving would double-train.
                        return Ok(None);
                    }
                    self.supervisor
                        .set_worker_tag(Some(self.batch_owner(batch_index)));
                }
                Err(e) => return Err(e),
            }
        }
        Err(GtError::Io {
            detail: format!("batch {batch_index} could not commit after repeated crashes"),
        })
    }

    /// Price one trained batch's distributed execution: per-worker DES
    /// schedules over the partitioned work, straggler hedging, then ring
    /// collectives. Pure virtual time — no numerics are touched.
    fn price_batch(
        &mut self,
        batch_index: usize,
        report: &BatchReport,
        active: &ActiveFaults,
    ) -> Result<(), GtError> {
        let work = match self.supervisor.trainer.last_work.clone() {
            Some(w) => w,
            None => return Ok(()),
        };
        let telemetry = self.supervisor.trainer.telemetry.clone();
        let spec = self.config.spec.clone();
        let nparts = self.owner.len();
        let alive: Vec<usize> = (0..spec.len()).filter(|&w| self.alive[w]).collect();
        let p = alive.len();
        let strategy = self.supervisor.trainer.prepro_strategy();
        let batch_start = self.clock_us;

        // Per-alive-worker stage time: local DES over the worker's owned
        // partitions plus its share of the NAPA GPU work.
        let mut stage: Vec<(usize, f64)> = Vec::with_capacity(p);
        self.last_schedules.clear();
        for &w in &alive {
            let owned: Vec<usize> = (0..nparts).filter(|&q| self.owner[q] == w).collect();
            let work_w = partition_work(&work, self.config.partition, &owned, nparts);
            let gpu_share = report.gpu_us() * owned.len() as f64 / nparts as f64;
            let schedule = price_worker(&work_w, &spec, w, strategy, gpu_share, active);
            let busy: f64 = schedule.events.iter().map(|e| e.end_us - e.start_us).sum();
            self.stats[w].busy_us += busy;
            stage.push((w, schedule.makespan_us));
            self.last_schedules.push((w, schedule));
        }

        // Straggler hedging: if the slowest stage exceeds hedge_factor ×
        // median, re-execute the victim's partitions on the fastest peer;
        // the first completion wins (ties go to the original — the backup
        // must strictly improve).
        // `(victim, backup, start_us, dur_us, won)` of this batch's hedge,
        // if one launched — folded into the cross-worker trace below.
        let mut hedge_slice: Option<(usize, usize, f64, f64, bool)> = None;
        if self.config.hedging && p >= 2 {
            let mut times: Vec<f64> = stage.iter().map(|&(_, t)| t).collect();
            times.sort_by(f64::total_cmp);
            let median = if times.len() % 2 == 1 {
                times[times.len() / 2]
            } else {
                0.5 * (times[times.len() / 2 - 1] + times[times.len() / 2])
            };
            let launch_at = self.config.hedge_factor * median;
            let (vi, &(victim, victim_t)) = stage
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1).then(b.0.cmp(&a.0)))
                .expect("p >= 2");
            if victim_t > launch_at {
                let &(backup, backup_own_t) = stage
                    .iter()
                    .filter(|&&(w, _)| w != victim)
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .expect("p >= 2");
                let owned: Vec<usize> = (0..nparts).filter(|&q| self.owner[q] == victim).collect();
                let work_v = partition_work(&work, self.config.partition, &owned, nparts);
                let gpu_share = report.gpu_us() * owned.len() as f64 / nparts as f64;
                let backup_run = price_worker(&work_v, &spec, backup, strategy, gpu_share, active);
                let backup_finish = launch_at.max(backup_own_t) + backup_run.makespan_us;
                let backup_won = backup_finish < victim_t;
                hedge_slice = Some((
                    victim,
                    backup,
                    batch_start + launch_at.max(backup_own_t),
                    backup_run.makespan_us,
                    backup_won,
                ));
                self.supervisor
                    .journal_hedge(batch_index, victim, backup, backup_won)?;
                self.hedges_launched += 1;
                telemetry
                    .counter(
                        "gt_cluster_hedges_launched_total",
                        "Backup executions launched for straggling workers",
                    )
                    .inc();
                if backup_won {
                    self.hedges_won += 1;
                    self.stats[backup].busy_us += backup_run
                        .events
                        .iter()
                        .map(|e| e.end_us - e.start_us)
                        .sum::<f64>();
                    stage[vi].1 = backup_finish;
                    telemetry
                        .counter(
                            "gt_cluster_hedges_won_total",
                            "Hedged backups that beat the straggler",
                        )
                        .inc();
                }
                telemetry.event(
                    "cluster",
                    "hedge",
                    &[
                        ("batch", &batch_index),
                        ("victim", &victim),
                        ("backup", &backup),
                        ("backup_won", &backup_won),
                    ],
                );
            }
        }

        let max_stage = stage.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        for &(w, t) in &stage {
            self.stats[w].idle_us += max_stage - t;
        }
        self.stage_ema_us = if self.stage_ema_us == 0.0 {
            max_stage
        } else {
            0.8 * self.stage_ema_us + 0.2 * max_stage
        };

        // Ring collectives on the shared fabric, stretched by the worst
        // active link degradation (the ring moves at its slowest hop).
        let degrade = alive
            .iter()
            .filter_map(|&w| active.link_degrade(w))
            .fold(1.0, f64::max);
        let param_bytes: u64 = {
            let params = self.supervisor.trainer.params();
            let mut names: Vec<&str> = params.names().collect();
            names.sort_unstable();
            names.iter().map(|n| params.get(n).bytes()).sum()
        };
        let collective = degrade
            * (spec.all_gather_us(work.total_feature_bytes as f64 / p as f64, p)
                + spec.all_reduce_us(param_bytes as f64, p));
        self.collective_us += collective;
        for &w in &alive {
            self.stats[w].link_us += collective;
        }
        self.clock_us += max_stage + collective;
        telemetry
            .counter(
                "gt_cluster_collective_us_total",
                "Virtual µs spent in all-gather/all-reduce collectives",
            )
            .add(collective as u64);
        for &(w, _) in &stage {
            telemetry
                .counter_with(
                    "gt_cluster_worker_busy_us_total",
                    "Virtual µs spent executing subtasks, by worker",
                    &[("worker", &w.to_string())],
                )
                .add(self.last_batch_busy(w) as u64);
        }

        // Fold the batch into the cross-worker trace: a root span on the
        // coordinator, one flow-linked envelope per worker wrapping that
        // worker's own S/R/K/T + NAPA subtask slices (offset onto the
        // cluster clock), the collective tail, and any hedge execution.
        // Span/flow identities derive from (seed, batch_index) only.
        let ctx = TraceContext::for_request(CLUSTER_TRACE_SEED, batch_index);
        let n = spec.len();
        self.coordinator_trace.duration(
            "batches",
            format!("batch #{batch_index}"),
            "cluster",
            batch_start,
            max_stage + collective,
            vec![
                (
                    "trace_id".to_string(),
                    Json::from(format!("{:016x}", ctx.trace_id)),
                ),
                ("workers".to_string(), Json::from(p)),
                ("stage_us".to_string(), Json::from(max_stage)),
                ("collective_us".to_string(), Json::from(collective)),
            ],
        );
        self.coordinator_trace.duration(
            "batches",
            "collective",
            "cluster",
            batch_start + max_stage,
            collective,
            vec![("degrade".to_string(), Json::from(degrade))],
        );
        for (w, schedule) in &self.last_schedules {
            let flow_id = ctx.span_id(*w);
            self.coordinator_trace
                .flow_start("batches", "partition", batch_start, flow_id);
            let wt = &mut self.worker_traces[*w];
            wt.flow_finish("batch", "partition", batch_start, flow_id);
            wt.duration(
                "batch",
                format!("batch #{batch_index}"),
                "cluster",
                batch_start,
                schedule.makespan_us,
                vec![
                    ("batch".to_string(), Json::from(batch_index)),
                    (
                        "parts".to_string(),
                        Json::from(owned_parts(&self.owner, *w)),
                    ),
                ],
            );
            let local = schedule_to_trace(schedule, &worker_process(*w));
            for mut e in local.events {
                e.ts_us += batch_start;
                wt.events.push(e);
            }
        }
        if let Some((victim, backup, start_us, dur_us, won)) = hedge_slice {
            let flow_id = ctx.span_id(n + victim);
            self.coordinator_trace
                .flow_start("batches", "hedge", start_us, flow_id);
            let wt = &mut self.worker_traces[backup];
            wt.flow_finish("hedge", "hedge", start_us, flow_id);
            wt.duration(
                "hedge",
                format!("hedge batch #{batch_index} (for worker {victim})"),
                "cluster",
                start_us,
                dur_us,
                vec![
                    ("victim".to_string(), Json::from(victim)),
                    ("backup_won".to_string(), Json::from(won)),
                ],
            );
            if won {
                if let Some(tracer) = self.supervisor.tracer.as_mut() {
                    tracer.dump_now(&format!("hedge-won:{batch_index}"));
                }
            }
        }
        Ok(())
    }

    /// Busy µs of worker `w` in the most recent priced batch.
    fn last_batch_busy(&self, w: usize) -> f64 {
        self.last_schedules
            .iter()
            .filter(|(worker, _)| *worker == w)
            .flat_map(|(_, s)| s.events.iter())
            .map(|e| e.end_us - e.start_us)
            .sum()
    }
}

/// The partition indices worker `w` currently owns, as a stable
/// comma-joined string for trace args.
fn owned_parts(owner: &[usize], w: usize) -> String {
    let parts: Vec<String> = owner
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o == w)
        .map(|(q, _)| q.to_string())
        .collect();
    parts.join(",")
}

/// Near-equal integer split: part `idx` of `total` over `parts`.
fn split_u64(total: u64, parts: usize, idx: usize) -> u64 {
    let parts = parts as u64;
    let idx = idx as u64;
    total / parts + u64::from(idx < total % parts)
}

/// Sum of the integer splits owned by `owned` — the adopter of a dead
/// worker's partition gets exactly the dead worker's share on top of its
/// own, so the total across workers is conserved to the unit.
fn split_owned(total: u64, owned: &[usize], parts: usize) -> u64 {
    owned.iter().map(|&i| split_u64(total, parts, i)).sum()
}

/// The slice of `work` a worker owning partitions `owned` executes.
fn partition_work(
    work: &PreproWork,
    partition: Partition,
    owned: &[usize],
    parts: usize,
) -> PreproWork {
    let hops = work
        .hops
        .iter()
        .map(|h| match partition {
            Partition::VertexCut => HopWork {
                sample_alg_ops: split_owned(h.sample_alg_ops, owned, parts),
                sample_hash_ops: split_owned(h.sample_hash_ops, owned, parts),
                reindex_ops: split_owned(h.reindex_ops, owned, parts),
                nodes_added: split_owned(h.nodes_added, owned, parts),
                edges: split_owned(h.edges, owned, parts),
                structure_bytes: split_owned(h.structure_bytes, owned, parts),
                feature_bytes: split_owned(h.feature_bytes, owned, parts),
            },
            // Feature-dim split: the feature matrix slices along the
            // embedding dimension; structure work replicates in full.
            Partition::FeatureDim => HopWork {
                feature_bytes: split_owned(h.feature_bytes, owned, parts),
                ..*h
            },
        })
        .collect();
    match partition {
        Partition::VertexCut => PreproWork {
            hops,
            batch_nodes: split_owned(work.batch_nodes, owned, parts),
            batch_feature_bytes: split_owned(work.batch_feature_bytes, owned, parts),
            total_nodes: split_owned(work.total_nodes, owned, parts),
            total_feature_bytes: split_owned(work.total_feature_bytes, owned, parts),
        },
        Partition::FeatureDim => PreproWork {
            hops,
            batch_feature_bytes: split_owned(work.batch_feature_bytes, owned, parts),
            total_feature_bytes: split_owned(work.total_feature_bytes, owned, parts),
            ..work.clone()
        },
    }
}

/// Price one worker's local schedule: its partition's S/R/K/T pipeline on
/// its own cores/PCIe, a NAPA GPU task gated on preprocessing completion,
/// under any straggler faults targeting this worker's cores (global core
/// `c` maps to worker `c / cores`, local core `c % cores`).
fn price_worker(
    work_w: &PreproWork,
    spec: &ClusterSpec,
    w: usize,
    strategy: crate::scheduler::PreproStrategy,
    gpu_us: f64,
    active: &ActiveFaults,
) -> Schedule {
    let sys = &spec.workers[w];
    let mut sim = build_prepro_sim(work_w, sys, strategy);
    if gpu_us > 0.0 {
        let deps: Vec<usize> = (0..sim.len()).collect();
        sim.add(TaskSpec::new("NAPA", Resource::Gpu, gpu_us, Phase::Aggregation).after(&deps));
    }
    let cores = sys.host.cores;
    let local = ActiveFaults {
        faults: active
            .faults
            .iter()
            .filter_map(|f| match f {
                FaultKind::StragglerCore { core, factor } if core / cores == w => {
                    Some(FaultKind::StragglerCore {
                        core: core % cores,
                        factor: *factor,
                    })
                }
                _ => None,
            })
            .collect(),
    };
    sim.run_with_faults(&local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::PreproStrategy;

    fn work() -> PreproWork {
        PreproWork {
            hops: vec![
                HopWork {
                    sample_alg_ops: 101,
                    sample_hash_ops: 53,
                    reindex_ops: 77,
                    nodes_added: 31,
                    edges: 97,
                    structure_bytes: 1003,
                    feature_bytes: 2001,
                },
                HopWork {
                    sample_alg_ops: 11,
                    sample_hash_ops: 7,
                    reindex_ops: 13,
                    nodes_added: 5,
                    edges: 17,
                    structure_bytes: 103,
                    feature_bytes: 201,
                },
            ],
            batch_nodes: 8,
            batch_feature_bytes: 512,
            total_nodes: 44,
            total_feature_bytes: 2202,
        }
    }

    fn hop_fields(h: &HopWork) -> [u64; 7] {
        [
            h.sample_alg_ops,
            h.sample_hash_ops,
            h.reindex_ops,
            h.nodes_added,
            h.edges,
            h.structure_bytes,
            h.feature_bytes,
        ]
    }

    #[test]
    fn vertex_cut_conserves_every_field_to_the_unit() {
        let w = work();
        let parts = 3;
        let pieces: Vec<PreproWork> = (0..parts)
            .map(|i| partition_work(&w, Partition::VertexCut, &[i], parts))
            .collect();
        for hop in 0..w.hops.len() {
            let total = hop_fields(&w.hops[hop]);
            let mut sum = [0u64; 7];
            for p in &pieces {
                for (s, f) in sum.iter_mut().zip(hop_fields(&p.hops[hop])) {
                    *s += f;
                }
            }
            assert_eq!(sum, total, "hop {hop} fields must be conserved");
        }
        assert_eq!(
            pieces.iter().map(|p| p.total_nodes).sum::<u64>(),
            w.total_nodes
        );
        assert_eq!(
            pieces.iter().map(|p| p.total_feature_bytes).sum::<u64>(),
            w.total_feature_bytes
        );
    }

    #[test]
    fn adopter_gets_exactly_the_dead_workers_share() {
        let w = work();
        let parts = 3;
        let merged = partition_work(&w, Partition::VertexCut, &[0, 2], parts);
        let p0 = partition_work(&w, Partition::VertexCut, &[0], parts);
        let p2 = partition_work(&w, Partition::VertexCut, &[2], parts);
        for hop in 0..w.hops.len() {
            let a = hop_fields(&merged.hops[hop]);
            let b = hop_fields(&p0.hops[hop]);
            let c = hop_fields(&p2.hops[hop]);
            for i in 0..7 {
                assert_eq!(a[i], b[i] + c[i]);
            }
        }
        assert_eq!(merged.total_nodes, p0.total_nodes + p2.total_nodes);
    }

    #[test]
    fn feature_dim_splits_features_and_replicates_structure() {
        let w = work();
        let piece = partition_work(&w, Partition::FeatureDim, &[1], 4);
        assert_eq!(piece.hops[0].structure_bytes, w.hops[0].structure_bytes);
        assert_eq!(piece.hops[0].sample_alg_ops, w.hops[0].sample_alg_ops);
        assert_eq!(piece.hops[0].edges, w.hops[0].edges);
        assert_eq!(piece.total_nodes, w.total_nodes);
        assert_eq!(piece.hops[0].feature_bytes, w.hops[0].feature_bytes / 4);
        // Feature bytes are conserved across the four slices.
        let total: u64 = (0..4)
            .map(|i| partition_work(&w, Partition::FeatureDim, &[i], 4).total_feature_bytes)
            .sum();
        assert_eq!(total, w.total_feature_bytes);
    }

    #[test]
    fn straggler_faults_map_onto_the_owning_workers_local_core() {
        let spec = ClusterSpec::tiny(2);
        let cores = spec.workers[0].host.cores;
        let w = work();
        // A straggler on worker 1's first core (global index `cores`).
        let active = ActiveFaults {
            faults: vec![FaultKind::StragglerCore {
                core: cores,
                factor: 16.0,
            }],
        };
        let clean = price_worker(
            &w,
            &spec,
            1,
            PreproStrategy::Serial,
            10.0,
            &ActiveFaults::default(),
        );
        let slowed = price_worker(&w, &spec, 1, PreproStrategy::Serial, 10.0, &active);
        assert!(
            slowed.makespan_us > clean.makespan_us,
            "straggler must stretch its worker: {} !> {}",
            slowed.makespan_us,
            clean.makespan_us
        );
        // Worker 0 never sees the fault.
        let other = price_worker(&w, &spec, 0, PreproStrategy::Serial, 10.0, &active);
        assert_eq!(other.makespan_us.to_bits(), clean.makespan_us.to_bits());
    }

    #[test]
    fn near_equal_split_is_exhaustive_and_fair() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 4] {
                let shares: Vec<u64> = (0..parts).map(|i| split_u64(total, parts, i)).collect();
                assert_eq!(shares.iter().sum::<u64>(), total);
                let max = *shares.iter().max().unwrap();
                let min = *shares.iter().min().unwrap();
                assert!(max - min <= 1, "{total}/{parts}: {shares:?}");
            }
        }
    }
}
