//! Request-scoped causal tracing through the serving stack.
//!
//! The [`RequestTracer`] is the gt-core end of gt-telemetry's tracing
//! contract: it mints a deterministic [`TraceContext`] per request (from
//! `(seed, request_index)` — never wall-clock), assembles the span tree
//! for every batch the [`Supervisor`](crate::serve::Supervisor) resolves
//! (queue-wait / S / R / K / T / kernel / stall / backoff, all in DES
//! virtual µs), and drives the two consumers:
//!
//! * the **flight recorder** — a bounded ring of recent span trees,
//!   frozen to a Perfetto-loadable JSON dump on the first SLO breach or
//!   an injected crash site;
//! * the **SLO engine** — every completion (served *and* shed) is
//!   classified against a declarative latency objective with multi-window
//!   burn-rate alerting, on the same virtual clock the DES prices batches
//!   in, so the whole alert stream is bit-identical across `GT_THREADS`
//!   widths.
//!
//! Tail sampling keeps dumps informative and bounded: any request that
//! resolved abnormally (shed, quarantined, degraded, recovered) or blew
//! the SLO latency threshold keeps its full tree; plain successes pass
//! through a seeded Algorithm-R-style reservoir and are otherwise demoted
//! to their root span (still present, still reconcilable against the
//! journal — just one span instead of a tree).

use crate::framework::{BatchOutcome, BatchReport};
use gt_sim::Phase;
use gt_telemetry::{
    FlightRecorder, RequestTrace, SegmentKind, SloAlert, SloEngine, SloSpec, Telemetry, ToJson,
    TraceContext, TraceSpan,
};
use std::path::PathBuf;

/// Static policy of a [`RequestTracer`].
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Seed all trace/span identities derive from (hash input, not RNG).
    pub seed: u64,
    /// Requests retained by the flight-recorder ring.
    pub ring_capacity: usize,
    /// Plain successes that keep their full span tree (Algorithm-R
    /// acceptance over the stream of normal requests; everything abnormal
    /// is always kept in full).
    pub reservoir: usize,
    /// Where flight dumps are written (`None` = kept in memory only).
    pub flight_path: Option<PathBuf>,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            seed: 0x6774_7263, // "gttrc"
            ring_capacity: 64,
            reservoir: 8,
            flight_path: None,
        }
    }
}

/// Gateway-provided identity of the request a `serve_batch` call is
/// serving: who it is and when it arrived/started on the virtual clock.
#[derive(Debug, Clone, Copy)]
struct PendingRequest {
    request_index: usize,
    tenant: Option<usize>,
    arrival_us: f64,
    start_us: f64,
}

/// Root-span name: the request index, qualified with the tenant when the
/// gateway runs multi-tenant admission.
fn root_name(request_index: usize, tenant: Option<usize>) -> String {
    match tenant {
        Some(t) => format!("request #{request_index} (tenant {t})"),
        None => format!("request #{request_index}"),
    }
}

/// One dump artifact the tracer produced (also written to
/// [`TracerConfig::flight_path`] when set).
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken (`slo-breach:<rule>`, `crash:<site>`, ...).
    pub reason: String,
    /// The full JSON artifact (Chrome trace document + `gt_flight_*` keys).
    pub artifact: String,
}

/// Per-request causal tracer + flight recorder + SLO engine. Owned by the
/// [`Supervisor`](crate::serve::Supervisor); the
/// [`Gateway`](crate::overload::Gateway) feeds it arrival/queue context
/// and shed resolutions.
pub struct RequestTracer {
    config: TracerConfig,
    recorder: FlightRecorder,
    slo: Option<SloEngine>,
    telemetry: Telemetry,
    pending: Option<PendingRequest>,
    /// Internal virtual clock for supervisor-only serving (no gateway):
    /// advances by each batch's service time.
    clock_us: f64,
    /// Monotone clamp for the SLO feed: gateway sheds can resolve at an
    /// arrival instant earlier than the previous served completion.
    slo_clock_us: f64,
    /// Plain successes seen so far (the reservoir's stream index).
    normal_seen: usize,
    alerts: Vec<SloAlert>,
    dumps: Vec<FlightDump>,
    breach_dumped: bool,
}

impl RequestTracer {
    /// A tracer with `config`, optionally evaluating `slo`, exporting
    /// metrics and events through `telemetry`.
    pub fn new(config: TracerConfig, slo: Option<SloSpec>, telemetry: Telemetry) -> RequestTracer {
        let slo = slo.map(|spec| SloEngine::new(spec, telemetry.clone()));
        RequestTracer {
            recorder: FlightRecorder::new(config.ring_capacity),
            config,
            slo,
            telemetry,
            pending: None,
            clock_us: 0.0,
            slo_clock_us: 0.0,
            normal_seen: 0,
            alerts: Vec::new(),
            dumps: Vec::new(),
            breach_dumped: false,
        }
    }

    /// The flight-recorder ring.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Every SLO rule transition so far, in virtual-time order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// True while any SLO rule is firing.
    pub fn breached(&self) -> bool {
        self.slo.as_ref().is_some_and(|e| e.breached())
    }

    /// The SLO engine's stable state label (`ok`, `breach:<rule>`), or
    /// `none` when no objective was configured.
    pub fn slo_state(&self) -> String {
        match &self.slo {
            Some(e) => e.state(),
            None => "none".to_string(),
        }
    }

    /// Dump artifacts produced so far.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Gateway hand-off: the next `serve_batch` call serves request
    /// `request_index` for `tenant` (None without tenancy), which arrived
    /// at `arrival_us` and starts service at `start_us` (both virtual µs).
    pub fn begin_request(
        &mut self,
        request_index: usize,
        tenant: Option<usize>,
        arrival_us: f64,
        start_us: f64,
    ) {
        self.pending = Some(PendingRequest {
            request_index,
            tenant,
            arrival_us,
            start_us,
        });
    }

    /// Resolve one served batch into a span tree, record it, and feed the
    /// SLO engine. Called by the supervisor at the end of `serve_batch`
    /// with the stall/backoff the serving layer charged on top of the
    /// report's modeled latency.
    pub fn finish_batch(
        &mut self,
        batch_index: usize,
        report: &BatchReport,
        stall_us: f64,
        backoff_us: f64,
    ) {
        // Without a gateway in front, the batch index doubles as the
        // request index and service is back-to-back on the virtual clock.
        let pending = self.pending.take().unwrap_or(PendingRequest {
            request_index: batch_index,
            tenant: None,
            arrival_us: self.clock_us,
            start_us: self.clock_us,
        });
        let service_us = report.e2e_us(true) + stall_us + backoff_us;
        let queued_us = pending.start_us - pending.arrival_us;
        let done_us = pending.start_us + service_us;
        self.clock_us = self.clock_us.max(done_us);

        let ctx = TraceContext::for_request(self.config.seed, pending.request_index);
        let root = ctx.parent_span_id;
        let mut spans = vec![TraceSpan {
            span_id: root,
            parent: None,
            kind: SegmentKind::Request,
            name: root_name(pending.request_index, pending.tenant),
            start_us: pending.arrival_us,
            dur_us: queued_us + service_us,
        }];
        // Child span ids are minted in a fixed order so the tree is a pure
        // function of (seed, request_index) and the segments present.
        let mut minted = 0usize;
        let mut child = |spans: &mut Vec<TraceSpan>, kind, name: String, start, dur| {
            let span_id = ctx.span_id(minted);
            minted += 1;
            spans.push(TraceSpan {
                span_id,
                parent: Some(root),
                kind,
                name,
                start_us: start,
                dur_us: dur,
            });
        };
        if queued_us > 0.0 {
            child(
                &mut spans,
                SegmentKind::QueueWait,
                "queue-wait".to_string(),
                pending.arrival_us,
                queued_us,
            );
        }
        // Preprocessing subtasks: one envelope span per S/R/K/T phase,
        // offset from the schedule's own origin to the service start.
        if let Some(schedule) = &report.prepro {
            for (phase, kind) in [
                (Phase::Sampling, SegmentKind::Sampling),
                (Phase::Reindex, SegmentKind::Reindex),
                (Phase::Lookup, SegmentKind::Lookup),
                (Phase::Transfer, SegmentKind::Transfer),
            ] {
                if let Some((from, until)) = schedule.phase_window_us(phase) {
                    child(
                        &mut spans,
                        kind,
                        kind.label().to_string(),
                        pending.start_us + from,
                        until - from,
                    );
                }
            }
        }
        let gpu_us = report.gpu_us();
        if gpu_us > 0.0 {
            // Steady-state overlap: kernels run against the next batch's
            // preprocessing, so the segment starts at service start.
            child(
                &mut spans,
                SegmentKind::Kernel,
                "kernel".to_string(),
                pending.start_us,
                gpu_us,
            );
        }
        let mut tail = pending.start_us + report.e2e_us(true);
        if stall_us > 0.0 {
            child(
                &mut spans,
                SegmentKind::Stall,
                "stall".to_string(),
                tail,
                stall_us,
            );
            tail += stall_us;
        }
        if backoff_us > 0.0 {
            child(
                &mut spans,
                SegmentKind::Backoff,
                "backoff".to_string(),
                tail,
                backoff_us,
            );
        }

        let latency_us = queued_us + service_us;
        let ok = report.outcome.trained();
        let mut trace = RequestTrace {
            trace_id: ctx.trace_id,
            request_index: pending.request_index,
            tenant: pending.tenant,
            batch_index: Some(batch_index),
            outcome: report.outcome.label().to_string(),
            outcome_json: report.outcome.to_json().to_json_string(),
            arrival_us: pending.arrival_us,
            done_us,
            spans,
        };
        let interesting = !matches!(report.outcome, BatchOutcome::Succeeded)
            || self
                .slo
                .as_ref()
                .is_some_and(|e| latency_us > e.spec().latency_threshold_us);
        self.retain(&mut trace, interesting);
        self.feed_slo(done_us, latency_us, ok);
    }

    /// Record a request the gateway refused to serve: a root-only trace
    /// (there is nothing below it — no batch ran) that still carries the
    /// outcome, plus an always-bad SLO sample.
    pub fn record_shed(
        &mut self,
        request_index: usize,
        outcome: &BatchOutcome,
        tenant: Option<usize>,
        arrival_us: f64,
        done_us: f64,
    ) {
        self.pending = None;
        let ctx = TraceContext::for_request(self.config.seed, request_index);
        let mut trace = RequestTrace {
            trace_id: ctx.trace_id,
            request_index,
            tenant,
            batch_index: None,
            outcome: outcome.label().to_string(),
            outcome_json: outcome.to_json().to_json_string(),
            arrival_us,
            done_us,
            spans: vec![TraceSpan {
                span_id: ctx.parent_span_id,
                parent: None,
                kind: SegmentKind::Request,
                name: root_name(request_index, tenant),
                start_us: arrival_us,
                dur_us: done_us - arrival_us,
            }],
        };
        self.retain(&mut trace, true);
        self.feed_slo(done_us, done_us - arrival_us, false);
    }

    /// Freeze the ring now (crash sites, chaos-oracle violations). Returns
    /// the artifact; also appends it to [`dumps`](RequestTracer::dumps)
    /// and writes [`TracerConfig::flight_path`] when configured.
    pub fn dump_now(&mut self, reason: &str) -> String {
        let artifact = self.recorder.dump(reason);
        self.telemetry
            .counter("gt_flight_dumps_total", "Flight-recorder dumps taken")
            .inc();
        self.telemetry.event(
            "flight",
            "flight_dump",
            &[("reason", &reason), ("requests", &self.recorder.len())],
        );
        if let Some(path) = &self.config.flight_path {
            // Best-effort: a full disk must not take the serving path down
            // with it; the artifact stays available in memory.
            let _ = std::fs::write(path, &artifact);
        }
        self.dumps.push(FlightDump {
            reason: reason.to_string(),
            artifact: artifact.clone(),
        });
        artifact
    }

    /// Apply tail sampling and append to the ring.
    fn retain(&mut self, trace: &mut RequestTrace, interesting: bool) {
        self.telemetry
            .counter("gt_trace_requests_total", "Requests traced")
            .inc();
        if !interesting && !self.reservoir_keeps(trace.trace_id) {
            trace.demote_to_root();
            self.telemetry
                .counter(
                    "gt_trace_demoted_total",
                    "Normal requests demoted to a root-only trace",
                )
                .inc();
        }
        self.recorder.record(trace.clone());
    }

    /// Algorithm-R acceptance over the stream of plain successes: the
    /// `n`-th one is kept in full with probability `reservoir/(n+1)`,
    /// decided by the request's own (seeded, deterministic) trace id.
    /// Earlier accepted trees are not evicted — the ring already bounds
    /// memory, so erring toward detail is free.
    fn reservoir_keeps(&mut self, trace_id: u64) -> bool {
        let n = self.normal_seen as u64;
        self.normal_seen += 1;
        n < self.config.reservoir as u64 || trace_id % (n + 1) < self.config.reservoir as u64
    }

    /// Feed one completion to the SLO engine (monotone-clamped) and take a
    /// flight dump on the first breach transition.
    fn feed_slo(&mut self, done_us: f64, latency_us: f64, ok: bool) {
        let Some(engine) = self.slo.as_mut() else {
            return;
        };
        self.slo_clock_us = self.slo_clock_us.max(done_us);
        let alerts = engine.record(self.slo_clock_us, latency_us, ok);
        let fired: Option<&'static str> = alerts.iter().find(|a| a.firing).map(|a| a.rule);
        self.alerts.extend(alerts);
        if let Some(rule) = fired {
            if !self.breach_dumped {
                self.breach_dumped = true;
                self.dump_now(&format!("slo-breach:{rule}"));
            }
        }
    }
}

impl std::fmt::Debug for RequestTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestTracer")
            .field("config", &self.config)
            .field("recorded", &self.recorder.len())
            .field("slo", &self.slo_state())
            .field("dumps", &self.dumps.len())
            .finish()
    }
}
