//! The service-wide tensor scheduler (§V-B, Figs 13–14).
//!
//! The same measured preprocessing work ([`PreproWork`]) is scheduled onto
//! the modeled host/PCIe under four strategies:
//!
//! * [`PreproStrategy::Serial`] — the DGL/PyG shape (Fig 12b): stages run
//!   one after another, each stage internally multi-threaded, transfers
//!   pageable.
//! * [`PreproStrategy::SerialPinned`] — SALIENT: the same serialized chain,
//!   but the lookup output lands in pinned buffers so the transfer runs at
//!   pinned bandwidth (its e2e win additionally comes from overlapping whole
//!   batches, handled by the framework layer).
//! * [`PreproStrategy::Pipelined`] — GraphTensor's subtask decomposition
//!   (Fig 13) *without* contention relaxing: S and R subtasks contend on
//!   the VID hash table (one lock group), reproducing Fig 14a.
//! * [`PreproStrategy::PipelinedRelaxed`] — Fig 14c: S subtasks are split
//!   into a parallel algorithm part (A) and a serialized hash-update part
//!   (H); R waits on H instead of racing it; K chunks pipeline directly
//!   into pinned T chunks (Fig 14b).

use crate::prepro::PreproWork;
use gt_sim::{
    ActiveFaults, Phase, Resource, Schedule, Simulator, SystemSpec, TaskSpec, TransferKind,
};

/// Preprocessing schedule shapes (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreproStrategy {
    /// Stage-serial, pageable transfers (DGL / multi-threaded PyG).
    Serial,
    /// Stage-serial, pinned transfers (SALIENT).
    SerialPinned,
    /// GraphTensor subtasks, naive locking (contended, Fig 14a).
    Pipelined,
    /// GraphTensor subtasks with contention relaxing (Fig 14c).
    PipelinedRelaxed,
}

/// Lock group id for the VID hash table.
const HASH_LOCK: u32 = 1;

/// Build and run the DES schedule for one batch's preprocessing.
pub fn schedule_prepro(work: &PreproWork, sys: &SystemSpec, strategy: PreproStrategy) -> Schedule {
    build_prepro_sim(work, sys, strategy).run()
}

/// [`schedule_prepro`] with injected faults applied at event boundaries
/// (straggler cores, PCIe stalls/failures, lock-contention spikes). With an
/// empty fault set this is bit-identical to the plain schedule.
pub fn schedule_prepro_with_faults(
    work: &PreproWork,
    sys: &SystemSpec,
    strategy: PreproStrategy,
    faults: &ActiveFaults,
) -> Schedule {
    build_prepro_sim(work, sys, strategy).run_with_faults(faults)
}

/// Construct the task graph for one batch's preprocessing without running
/// it. Profilers (gt-profile) use the unrun [`Simulator`] for dependency
/// reconstruction and zeroed-stage what-if re-runs.
pub fn build_prepro_sim(
    work: &PreproWork,
    sys: &SystemSpec,
    strategy: PreproStrategy,
) -> Simulator {
    match strategy {
        PreproStrategy::Serial => serial(work, sys, TransferKind::Pageable),
        PreproStrategy::SerialPinned => serial(work, sys, TransferKind::Pinned),
        PreproStrategy::Pipelined => pipelined(work, sys, false),
        PreproStrategy::PipelinedRelaxed => pipelined(work, sys, true),
    }
}

/// Host-task duration for `ops` elementary operations on one core.
fn ops_us(ops: u64, sys: &SystemSpec) -> f64 {
    ops as f64 / sys.host.ops_per_us
}

/// Host-side gather duration for `bytes` on one core (memory-bound copy; a
/// single core sustains roughly 1/8 of socket bandwidth).
fn copy_us(bytes: u64, sys: &SystemSpec) -> f64 {
    let per_core_bw = sys.host.mem_bandwidth / 8.0 / 1.0e6; // bytes per µs
    bytes as f64 / per_core_bw
}

/// Split `total` into `n` near-equal chunks (no zero chunks unless total=0).
fn chunk(total: u64, n: usize) -> Vec<u64> {
    let n = n.max(1) as u64;
    let base = total / n;
    let rem = total % n;
    (0..n)
        .map(|i| base + u64::from(i < rem))
        .filter(|&c| c > 0)
        .collect()
}

/// Serialized stages: all S hops (in order), then all R, then K, then T.
/// Each stage fans out across all host cores; T is a single DMA stream.
fn serial(work: &PreproWork, sys: &SystemSpec, kind: TransferKind) -> Simulator {
    let cores = sys.host.cores;
    let mut sim = Simulator::new(cores);
    let mut prev_stage: Vec<usize> = Vec::new();

    // S: hop k+1 depends on hop k (the frontier comes from it). Even the
    // serialized baselines sample with a thread pool sharing the VID hash
    // table, so each hop's hash updates serialize on its lock; only the
    // algorithm portion scales with cores — the paper's \u{25b3} "partial"
    // preprocessing rating for DGL-style multithreaded samplers.
    for (k, hop) in work.hops.iter().enumerate() {
        let mut ids = Vec::new();
        for (c, share) in chunk(hop.sample_alg_ops, cores).into_iter().enumerate() {
            let t = TaskSpec::new(
                format!("S{}A c{}", k + 1, c),
                Resource::HostCore,
                ops_us(share, sys),
                Phase::Sampling,
            )
            .after(&prev_stage);
            ids.push(sim.add(t));
        }
        let n_hash = chunk(hop.sample_hash_ops, cores).len().max(1) as u64;
        for (c, share) in chunk(hop.sample_hash_ops, cores).into_iter().enumerate() {
            let t = TaskSpec::new(
                format!("S{}H c{}", k + 1, c),
                Resource::HostCore,
                ops_us(share, sys),
                Phase::Sampling,
            )
            .after(&prev_stage)
            .locked(HASH_LOCK)
            .items(hop.nodes_added / n_hash);
            ids.push(sim.add(t));
        }
        prev_stage = ids;
    }
    let s_done = prev_stage.clone();

    // R: all hops, after every S.
    let mut r_ids = Vec::new();
    for (k, hop) in work.hops.iter().enumerate() {
        for (c, share) in chunk(hop.reindex_ops, cores).into_iter().enumerate() {
            let t = TaskSpec::new(
                format!("R{} c{}", k + 1, c),
                Resource::HostCore,
                ops_us(share, sys),
                Phase::Reindex,
            )
            .after(&s_done)
            .items(hop.nodes_added / cores.max(1) as u64);
            r_ids.push(sim.add(t));
        }
    }

    // K: gather all features, after R.
    let mut k_ids = Vec::new();
    for (c, share) in chunk(work.total_feature_bytes, cores)
        .into_iter()
        .enumerate()
    {
        let t = TaskSpec::new(
            format!("K c{c}"),
            Resource::HostCore,
            copy_us(share, sys),
            Phase::Lookup,
        )
        .after(&r_ids)
        .items(work.total_nodes / cores.max(1) as u64);
        k_ids.push(sim.add(t));
    }

    // T: one stream for structures + features.
    let bytes = work.total_feature_bytes + work.total_structure_bytes();
    let t = TaskSpec::new(
        "T",
        Resource::Pcie,
        sys.pcie.transfer_us(bytes, kind),
        Phase::Transfer,
    )
    .after(&k_ids)
    .items(work.total_nodes);
    sim.add(t);

    sim
}

/// GraphTensor's per-layer subtask pipeline (Fig 13), optionally with the
/// contention relaxing of Fig 14c.
fn pipelined(work: &PreproWork, sys: &SystemSpec, relaxed: bool) -> Simulator {
    let cores = sys.host.cores;
    let mut sim = Simulator::new(cores);

    // Per-hop groups of (lookup chunks, feature bytes, nodes) awaiting
    // their pipelined transfer.
    let mut kt_groups: Vec<(Vec<usize>, u64, u64)> = Vec::new();
    let mut last_s: Vec<usize> = Vec::new();
    let mut prev_hop_done: Vec<usize> = Vec::new();
    let mut r_all: Vec<usize> = Vec::new();
    let mut structure_bytes = 0u64;

    // Seed-node lookup chunks (their ids are known before any sampling).
    let seed_k: Vec<usize> = chunk(work.batch_feature_bytes, cores)
        .into_iter()
        .enumerate()
        .map(|(c, share)| {
            sim.add(
                TaskSpec::new(
                    format!("K0 c{c}"),
                    Resource::HostCore,
                    copy_us(share, sys),
                    Phase::Lookup,
                )
                .items(work.batch_nodes / cores.max(1) as u64),
            )
        })
        .collect();
    kt_groups.push((seed_k, work.batch_feature_bytes, work.batch_nodes));

    for (k, hop) in work.hops.iter().enumerate() {
        // --- S subtasks ---
        let s_ids: Vec<usize> = if relaxed {
            // Fig 14c: parallel algorithm parts + serialized hash updates.
            let alg: Vec<usize> = chunk(hop.sample_alg_ops, cores)
                .into_iter()
                .enumerate()
                .map(|(c, share)| {
                    sim.add(
                        TaskSpec::new(
                            format!("S{}A c{}", k + 1, c),
                            Resource::HostCore,
                            ops_us(share, sys),
                            Phase::Sampling,
                        )
                        .after(&prev_hop_done),
                    )
                })
                .collect();
            chunk(hop.sample_hash_ops, cores)
                .into_iter()
                .enumerate()
                .map(|(c, share)| {
                    sim.add(
                        TaskSpec::new(
                            format!("S{}H c{}", k + 1, c),
                            Resource::HostCore,
                            ops_us(share, sys),
                            Phase::Sampling,
                        )
                        .after(&alg)
                        .locked(HASH_LOCK)
                        .items(hop.nodes_added / cores.max(1) as u64),
                    )
                })
                .collect()
        } else {
            // Naive: every S chunk takes the hash lock for its whole run
            // (algorithm and updates interleave), serializing S (Fig 14a).
            chunk(hop.sample_alg_ops + hop.sample_hash_ops, cores)
                .into_iter()
                .enumerate()
                .map(|(c, share)| {
                    sim.add(
                        TaskSpec::new(
                            format!("S{} c{}", k + 1, c),
                            Resource::HostCore,
                            ops_us(share, sys),
                            Phase::Sampling,
                        )
                        .after(&prev_hop_done)
                        .locked(HASH_LOCK)
                        .items(hop.nodes_added / cores.max(1) as u64),
                    )
                })
                .collect()
        };

        // --- R subtasks: per hop, right after that hop's S ---
        let r_ids: Vec<usize> = chunk(hop.reindex_ops, cores)
            .into_iter()
            .enumerate()
            .map(|(c, share)| {
                let mut t = TaskSpec::new(
                    format!("R{} c{}", k + 1, c),
                    Resource::HostCore,
                    ops_us(share, sys),
                    Phase::Reindex,
                )
                .after(&s_ids)
                .items(hop.nodes_added / cores.max(1) as u64);
                if !relaxed {
                    // R's hash reads race S's writes on the shared table.
                    t = t.locked(HASH_LOCK);
                }
                sim.add(t)
            })
            .collect();

        // --- K subtasks: gather this hop's new nodes ---
        let k_ids: Vec<usize> = chunk(hop.feature_bytes, cores)
            .into_iter()
            .enumerate()
            .map(|(c, share)| {
                sim.add(
                    TaskSpec::new(
                        format!("K{} c{}", k + 1, c),
                        Resource::HostCore,
                        copy_us(share, sys),
                        Phase::Lookup,
                    )
                    .after(&s_ids)
                    .items(hop.nodes_added / cores.max(1) as u64),
                )
            })
            .collect();
        kt_groups.push((k_ids, hop.feature_bytes, hop.nodes_added));

        last_s = s_ids.clone();
        prev_hop_done = s_ids;

        // Structure bytes are tiny next to embeddings; coalesce every
        // hop's CSR/CSC into one DMA to avoid paying setup per hop.
        structure_bytes += hop.structure_bytes;
        r_all.extend(&r_ids);
    }

    // --- T(R): one pinned transfer for all reindexed structures. ---
    if structure_bytes > 0 {
        sim.add(
            TaskSpec::new(
                "T(R)",
                Resource::Pcie,
                sys.pcie.transfer_us(structure_bytes, TransferKind::Pinned),
                Phase::Transfer,
            )
            .after(&r_all),
        );
    }

    // --- T(K): pipelined pinned transfers, one per hop's gathered buffer
    // (Fig 14b: each sampled embedding chunk is transferred as soon as it
    // is ready), gated by the memory-allocation barrier on the last S
    // (§V-B: "the scheduler sets a barrier before running T that waits for
    // S1's completion"). Buffers below the DMA-amortization threshold are
    // coalesced with the next hop's so setup latency never dominates.
    const MIN_TRANSFER_BYTES: u64 = 1 << 18;
    let mut pending_deps: Vec<usize> = Vec::new();
    let mut pending_bytes = 0u64;
    let mut pending_nodes = 0u64;
    let n_groups = kt_groups.len();
    for (i, (k_ids, bytes, nodes)) in kt_groups.into_iter().enumerate() {
        pending_deps.extend(k_ids);
        pending_bytes += bytes;
        pending_nodes += nodes;
        let last = i + 1 == n_groups;
        if pending_bytes >= MIN_TRANSFER_BYTES || (last && pending_bytes > 0) {
            let mut deps = std::mem::take(&mut pending_deps);
            deps.extend_from_slice(&last_s);
            sim.add(
                TaskSpec::new(
                    format!("T(K{i})"),
                    Resource::Pcie,
                    sys.pcie.transfer_us(pending_bytes, TransferKind::Pinned),
                    Phase::Transfer,
                )
                .after(&deps)
                .items(pending_nodes),
            );
            pending_bytes = 0;
            pending_nodes = 0;
        }
    }

    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepro::HopWork;

    fn work() -> PreproWork {
        let hop = |alg: u64, hash: u64, nodes: u64, edges: u64| HopWork {
            sample_alg_ops: alg,
            sample_hash_ops: hash,
            reindex_ops: 4 * edges,
            nodes_added: nodes,
            edges,
            structure_bytes: edges * 16,
            feature_bytes: nodes * 512,
        };
        PreproWork {
            hops: vec![
                hop(40_000, 10_000, 3_000, 5_000),
                hop(160_000, 40_000, 12_000, 20_000),
            ],
            batch_nodes: 300,
            batch_feature_bytes: 300 * 512,
            total_nodes: 15_300,
            total_feature_bytes: 15_300 * 512,
        }
    }

    fn sys() -> SystemSpec {
        SystemSpec::paper_testbed()
    }

    #[test]
    fn pipelined_beats_serial() {
        let w = work();
        let serial = schedule_prepro(&w, &sys(), PreproStrategy::Serial);
        let relaxed = schedule_prepro(&w, &sys(), PreproStrategy::PipelinedRelaxed);
        assert!(
            relaxed.makespan_us < serial.makespan_us,
            "pipelined {} !< serial {}",
            relaxed.makespan_us,
            serial.makespan_us
        );
    }

    #[test]
    fn relaxing_beats_naive_locking() {
        let w = work();
        let naive = schedule_prepro(&w, &sys(), PreproStrategy::Pipelined);
        let relaxed = schedule_prepro(&w, &sys(), PreproStrategy::PipelinedRelaxed);
        assert!(
            relaxed.makespan_us < naive.makespan_us,
            "relaxed {} !< naive {}",
            relaxed.makespan_us,
            naive.makespan_us
        );
        assert!(naive.total_lock_wait_us() > relaxed.total_lock_wait_us());
    }

    #[test]
    fn pinned_serial_beats_pageable_serial() {
        let w = work();
        let pageable = schedule_prepro(&w, &sys(), PreproStrategy::Serial);
        let pinned = schedule_prepro(&w, &sys(), PreproStrategy::SerialPinned);
        assert!(pinned.makespan_us < pageable.makespan_us);
    }

    #[test]
    fn serial_stage_order_is_strict() {
        let w = work();
        let s = schedule_prepro(&w, &sys(), PreproStrategy::Serial);
        let s_end = s.phase_finish_us(Phase::Sampling);
        let r_start = s
            .events
            .iter()
            .filter(|e| e.phase == Phase::Reindex)
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        assert!(r_start >= s_end - 1e-9);
        let k_end = s.phase_finish_us(Phase::Lookup);
        let t_start = s
            .events
            .iter()
            .filter(|e| e.phase == Phase::Transfer)
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        assert!(t_start >= k_end - 1e-9);
    }

    #[test]
    fn pipelined_overlaps_lookup_with_sampling() {
        let w = work();
        let s = schedule_prepro(&w, &sys(), PreproStrategy::PipelinedRelaxed);
        let s_end = s.phase_finish_us(Phase::Sampling);
        let k_start = s
            .events
            .iter()
            .filter(|e| e.phase == Phase::Lookup)
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        assert!(
            k_start < s_end,
            "lookup should start ({k_start}) before sampling finishes ({s_end})"
        );
    }

    #[test]
    fn all_strategies_do_the_same_transfer_bytes() {
        // The schedules move the same data; only placement differs. Busy
        // PCIe time may differ (pinned vs pageable, chunk setup), but every
        // strategy must transfer features + structures.
        let w = work();
        for strat in [
            PreproStrategy::Serial,
            PreproStrategy::SerialPinned,
            PreproStrategy::Pipelined,
            PreproStrategy::PipelinedRelaxed,
        ] {
            let s = schedule_prepro(&w, &sys(), strat);
            assert!(s.phase_busy_us(Phase::Transfer) > 0.0, "{strat:?}");
            assert!(s.makespan_us > 0.0);
        }
    }

    #[test]
    fn empty_faults_match_plain_schedule_bitwise() {
        let w = work();
        for strat in [
            PreproStrategy::Serial,
            PreproStrategy::Pipelined,
            PreproStrategy::PipelinedRelaxed,
        ] {
            let plain = schedule_prepro(&w, &sys(), strat);
            let faulted = schedule_prepro_with_faults(&w, &sys(), strat, &ActiveFaults::none());
            assert_eq!(
                plain.makespan_us.to_bits(),
                faulted.makespan_us.to_bits(),
                "{strat:?}"
            );
            assert_eq!(plain.events.len(), faulted.events.len());
            for (a, b) in plain.events.iter().zip(&faulted.events) {
                assert_eq!(a.start_us.to_bits(), b.start_us.to_bits());
                assert_eq!(a.end_us.to_bits(), b.end_us.to_bits());
            }
            assert!(!faulted.has_failures());
        }
    }

    #[test]
    fn injected_faults_perturb_and_mark_the_schedule() {
        let w = work();
        let plain = schedule_prepro(&w, &sys(), PreproStrategy::PipelinedRelaxed);
        let stalled = schedule_prepro_with_faults(
            &w,
            &sys(),
            PreproStrategy::PipelinedRelaxed,
            &gt_sim::FaultPlan::new(7)
                .with_transfer_stall(4.0, 1.0)
                .active(0, 0),
        );
        assert!(stalled.makespan_us > plain.makespan_us);
        assert!(!stalled.has_failures());

        let failed = schedule_prepro_with_faults(
            &w,
            &sys(),
            PreproStrategy::PipelinedRelaxed,
            &gt_sim::FaultPlan::new(7)
                .with_transfer_failure(1.0)
                .active(0, 0),
        );
        assert!(failed.has_failures());
    }

    #[test]
    fn empty_hops_do_not_panic() {
        let w = PreproWork {
            hops: vec![],
            batch_nodes: 10,
            batch_feature_bytes: 1000,
            total_nodes: 10,
            total_feature_bytes: 1000,
        };
        for strat in [PreproStrategy::Serial, PreproStrategy::PipelinedRelaxed] {
            let s = schedule_prepro(&w, &sys(), strat);
            assert!(s.makespan_us >= 0.0);
        }
    }
}
