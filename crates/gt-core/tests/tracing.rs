//! End-to-end tests of request-scoped causal tracing: span trees through
//! the gateway and supervisor, the flight-recorder dump protocol, SLO
//! burn-rate breaches in virtual time, and exact reconciliation between a
//! dump and the write-ahead outcome journal.
//!
//! The load-bearing property is determinism: every artifact asserted here
//! — trace ids, span trees, alert streams, dump bytes — is a pure
//! function of `(workload, fault plan, seed)`. Two identical runs must
//! produce byte-identical dumps; CI additionally diffs the same artifact
//! across `GT_THREADS={1,4}`.

use gt_core::journal;
use gt_core::{
    DurabilityConfig, Gateway, GraphData, GraphTensor, GtError, GtVariant, ModelConfig,
    OverloadConfig, Supervisor, TracerConfig,
};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{FaultPlan, SystemSpec};
use gt_telemetry::{dump_outcomes, from_chrome_json, json::parse, SloSpec};
use std::path::PathBuf;

fn data() -> GraphData {
    GraphData::synthetic(300, 3000, 16, 4, 3)
}

fn supervisor(plan: FaultPlan) -> Supervisor {
    let mut t = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    t.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    t.telemetry = gt_telemetry::Telemetry::recording();
    Supervisor::new(t, plan)
}

fn batches(n: usize) -> Vec<Vec<VId>> {
    (0..n)
        .map(|i| {
            ((i * 8) as VId..(i * 8 + 8) as VId)
                .map(|v| v % 300)
                .collect()
        })
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gt_tracing_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A gateway under a sustained injected stall: service is 50× slower than
/// arrivals, so the run sheds, degrades, blows the latency SLO, and takes
/// a breach dump — deterministically.
fn overloaded_run(durable_dir: Option<&std::path::Path>) -> Gateway {
    let plan = FaultPlan::new(7).with_serve_delay_window(50_000.0, 0, None);
    let mut sup = supervisor(plan);
    sup.enable_tracing(
        TracerConfig {
            seed: 99,
            ring_capacity: 32,
            reservoir: 4,
            flight_path: None,
        },
        Some(SloSpec::latency(20_000.0, 0.9)),
    );
    if let Some(dir) = durable_dir {
        sup.make_durable(DurabilityConfig {
            dir: dir.to_path_buf(),
            checkpoint_every: 4,
        })
        .unwrap();
    }
    let cfg = OverloadConfig {
        queue_capacity: 4,
        deadline_us: f64::INFINITY,
        degrade_watermark: 2,
        halve_watermark: 3,
        reduced_fanout: 2,
    };
    let mut g = Gateway::new(sup, cfg);
    let d = data();
    for (i, b) in batches(24).iter().enumerate() {
        g.submit(&d, i as f64 * 1000.0, b);
    }
    g.drain(&d);
    g
}

/// Sustained overload must breach the SLO and freeze exactly one breach
/// dump, whose reason names the firing rule.
#[test]
fn overload_breaches_the_slo_and_dumps_once() {
    let g = overloaded_run(None);
    let tracer = g.supervisor.tracer.as_ref().unwrap();
    assert!(tracer.breached(), "hard overload must breach the SLO");
    assert!(tracer.slo_state().starts_with("breach:"));
    assert!(tracer.alerts().iter().any(|a| a.firing));
    let dumps = tracer.dumps();
    assert_eq!(dumps.len(), 1, "exactly one breach dump");
    assert!(
        dumps[0].reason.starts_with("slo-breach:"),
        "{}",
        dumps[0].reason
    );
    // The breach is also visible in the exported metrics.
    let snap = g.supervisor.trainer.telemetry.snapshot();
    assert!(snap.counter("gt_slo_breaches_total") >= 1);
    assert_eq!(snap.gauge("gt_slo_ok"), Some(0.0));
    assert_eq!(snap.counter("gt_flight_dumps_total"), 1);
}

/// The whole trace/SLO/dump chain is a pure function of the workload:
/// identical runs produce byte-identical dump artifacts and identical
/// alert streams. (CI re-checks the same property across GT_THREADS.)
#[test]
fn dumps_and_alerts_are_bit_identical_across_runs() {
    let a = overloaded_run(None);
    let b = overloaded_run(None);
    let ta = a.supervisor.tracer.as_ref().unwrap();
    let tb = b.supervisor.tracer.as_ref().unwrap();
    assert_eq!(ta.alerts(), tb.alerts());
    assert_eq!(ta.dumps().len(), tb.dumps().len());
    for (da, db) in ta.dumps().iter().zip(tb.dumps()) {
        assert_eq!(da.artifact, db.artifact, "dump bytes diverged");
    }
}

/// A breach dump is a valid Chrome trace document: it round-trips through
/// the exporter, its span slices carry trace/span ids, and parent→child
/// causality is expressed as flow events.
#[test]
fn breach_dump_opens_as_a_chrome_trace_with_flows() {
    let g = overloaded_run(None);
    let dump = &g.supervisor.tracer.as_ref().unwrap().dumps()[0].artifact;

    let traces = from_chrome_json(dump).unwrap();
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].process, "flight recorder");
    let slices: Vec<_> = traces[0]
        .events
        .iter()
        .filter(|e| e.flow.is_none())
        .collect();
    let flows: Vec<_> = traces[0]
        .events
        .iter()
        .filter(|e| e.flow.is_some())
        .collect();
    assert!(!slices.is_empty());
    assert!(
        !flows.is_empty(),
        "span trees must link parents to children"
    );
    // Flow events come in start/finish pairs sharing the child span id.
    assert_eq!(flows.len() % 2, 0);
    // Every slice names its trace and span.
    for s in &slices {
        assert!(s.args.iter().any(|(k, _)| k == "trace_id"), "{:?}", s.name);
        assert!(s.args.iter().any(|(k, _)| k == "span_id"));
    }
    // The raw text uses the Perfetto flow phases.
    assert!(dump.contains("\"ph\":\"s\""));
    assert!(dump.contains("\"ph\":\"f\""));
    // Segment vocabulary: the S/R/K/T pipeline is visible in the dump.
    for seg in ["\"S\"", "\"R\"", "\"K\"", "\"T\""] {
        assert!(dump.contains(seg), "missing segment {seg}");
    }
}

/// A dump taken from a durable run reconciles *exactly* against the
/// write-ahead journal: for every request in the dump that reached the
/// supervisor, the dump's `outcome_json` equals the journal record's
/// outcome byte for byte.
#[test]
fn breach_dump_reconciles_with_the_journal() {
    let dir = tmp_dir("reconcile");
    let g = overloaded_run(Some(&dir));
    let tracer = g.supervisor.tracer.as_ref().unwrap();
    // Reconcile the *final* ring state (a superset of the breach dump's)
    // so served batches after the breach are covered too.
    let mut t = g
        .supervisor
        .tracer
        .as_ref()
        .map(|t| t.recorder().dump("final"))
        .unwrap();
    // Also sanity-check the breach-time artifact itself.
    let breach = tracer.dumps()[0].artifact.clone();

    let scan = journal::read_journal(dir.join("outcomes.gtj")).unwrap();
    let mut journaled = std::collections::BTreeMap::new();
    for rec in &scan.records {
        if journal::record_type(rec) == Some("batch") {
            let idx = journal::record_batch_index(rec).unwrap();
            let outcome = rec.get("outcome").unwrap().to_json_string();
            journaled.insert(idx, outcome);
        }
    }
    assert!(
        !journaled.is_empty(),
        "durable gateway must journal batches"
    );

    for dump in [&mut t, &mut breach.clone()] {
        let outcomes = dump_outcomes(dump).unwrap();
        assert!(!outcomes.is_empty());
        for (batch_index, outcome_json) in &outcomes {
            let journal_json = journaled
                .get(batch_index)
                .unwrap_or_else(|| panic!("batch {batch_index} traced but not journaled"));
            assert_eq!(
                outcome_json, journal_json,
                "outcome divergence at batch {batch_index}"
            );
        }
    }
}

/// Tracing without a gateway: `serve_batch` alone still produces span
/// trees with the S/R/K/T decomposition, parented to a per-request root
/// with deterministic ids.
#[test]
fn supervisor_only_tracing_builds_segment_trees() {
    let mut sup = supervisor(FaultPlan::new(0));
    sup.enable_tracing(TracerConfig::default(), None);
    let d = data();
    for b in batches(3) {
        sup.serve_batch(&d, &b);
    }
    let traces = sup.tracer.as_ref().unwrap().recorder().traces();
    assert_eq!(traces.len(), 3);
    for (i, t) in traces.iter().enumerate() {
        assert_eq!(t.request_index, i);
        assert_eq!(t.batch_index, Some(i));
        assert_eq!(t.outcome, "succeeded");
        let root = t.root_span().unwrap();
        let labels: Vec<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
        for seg in ["S", "R", "K", "T", "kernel"] {
            assert!(labels.contains(&seg), "request {i} missing segment {seg}");
        }
        // Every non-root span parents to the request root and stays inside
        // the root's envelope.
        let root_span = &t.spans[0];
        for s in &t.spans[1..] {
            assert_eq!(s.parent, Some(root));
            assert!(s.start_us >= root_span.start_us - 1e-9);
            assert!(
                s.start_us + s.dur_us <= root_span.start_us + root_span.dur_us + 1e-9,
                "segment {} escapes the request envelope",
                s.name
            );
        }
    }
    // Identity is a pure function of (seed, request_index).
    let again = {
        let mut sup = supervisor(FaultPlan::new(0));
        sup.enable_tracing(TracerConfig::default(), None);
        let d = data();
        for b in batches(3) {
            sup.serve_batch(&d, &b);
        }
        sup.tracer.unwrap().recorder().traces()
    };
    assert_eq!(traces, again);
}

/// An injected crash site freezes the flight recorder before the error
/// surfaces: the dump names the site and retains the doomed batch.
#[test]
fn injected_crash_takes_a_flight_dump() {
    let dir = tmp_dir("crash");
    let flight = dir.join("flight.json");
    let plan = FaultPlan::new(5).with_crash_at(2, gt_sim::CrashSite::MidJournal);
    let mut sup = supervisor(plan);
    sup.enable_tracing(
        TracerConfig {
            flight_path: Some(flight.clone()),
            ..TracerConfig::default()
        },
        None,
    );
    sup.make_durable(DurabilityConfig {
        dir: dir.clone(),
        checkpoint_every: 0,
    })
    .unwrap();
    let d = data();
    let mut crashed = false;
    for b in batches(4) {
        match sup.serve_durable(&d, &b) {
            Ok(_) => {}
            Err(GtError::InjectedCrash { site }) => {
                assert_eq!(site, gt_sim::CrashSite::MidJournal);
                crashed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e:?}"),
        }
    }
    assert!(crashed, "crash rule must fire");
    let tracer = sup.tracer.as_ref().unwrap();
    assert_eq!(tracer.dumps().len(), 1);
    assert_eq!(tracer.dumps()[0].reason, "crash:mid-journal");
    // The artifact is on disk too, and carries the reason.
    let on_disk = std::fs::read_to_string(&flight).unwrap();
    let doc = parse(&on_disk).unwrap();
    assert_eq!(
        doc.get("gt_flight_reason").unwrap().as_str(),
        Some("crash:mid-journal")
    );
    // The crashing batch (index 2) is in the ring: its outcome was
    // resolved before the journal append tore.
    let outcomes = dump_outcomes(&on_disk).unwrap();
    assert!(outcomes.iter().any(|(b, _)| *b == 2));
}

/// Tail sampling: abnormal requests always keep their full tree; plain
/// successes beyond the reservoir are demoted to a root-only trace but
/// remain present (and reconcilable).
#[test]
fn tail_sampling_demotes_only_plain_successes() {
    let mut sup = supervisor(FaultPlan::new(0));
    sup.enable_tracing(
        TracerConfig {
            seed: 1,
            ring_capacity: 64,
            reservoir: 2,
            flight_path: None,
        },
        None,
    );
    let d = data();
    for b in batches(16) {
        sup.serve_batch(&d, &b);
    }
    let traces = sup.tracer.as_ref().unwrap().recorder().traces();
    assert_eq!(traces.len(), 16);
    let full = traces.iter().filter(|t| t.spans.len() > 1).count();
    let demoted = traces.iter().filter(|t| t.spans.len() == 1).count();
    assert!(demoted > 0, "a reservoir of 2 must demote some of 16");
    assert!(full >= 2, "the reservoir floor keeps early successes");
    // Demoted traces still carry identity and outcome.
    for t in traces.iter().filter(|t| t.spans.len() == 1) {
        assert_eq!(t.outcome, "succeeded");
        assert!(t.batch_index.is_some());
        assert!(!t.outcome_json.is_empty());
    }
    let snap = sup.trainer.telemetry.snapshot();
    assert_eq!(
        snap.counter("gt_trace_requests_total"),
        16,
        "every request is traced"
    );
    assert_eq!(snap.counter("gt_trace_demoted_total"), demoted as u64);

    // Abnormal outcomes bypass the reservoir entirely: a quarantined
    // request keeps its full (root + stall/backoff-free) trace flagged
    // with its outcome.
    let mut sup = supervisor(FaultPlan::new(0));
    sup.enable_tracing(
        TracerConfig {
            reservoir: 0,
            ..TracerConfig::default()
        },
        None,
    );
    sup.serve_batch(&d, &[5, 5, 6]); // duplicate ids → quarantined
    let traces = sup.tracer.as_ref().unwrap().recorder().traces();
    assert_eq!(traces[0].outcome, "quarantined");
    assert!(traces[0].outcome_json.contains("invalid-batch"));
}

/// Shed requests are traced (root-only, no batch index) and counted
/// against the SLO even though they never touched the supervisor.
#[test]
fn shed_requests_are_traced_and_counted_bad() {
    let g = overloaded_run(None);
    let traces = g.supervisor.tracer.as_ref().unwrap().recorder().traces();
    let shed: Vec<_> = traces.iter().filter(|t| t.outcome == "shed").collect();
    assert!(!shed.is_empty(), "hard overload must shed");
    for t in &shed {
        assert_eq!(t.batch_index, None);
        assert_eq!(t.spans.len(), 1);
        assert!(t.outcome_json.contains("queue-full") || t.outcome_json.contains("deadline"));
    }
    let snap = g.supervisor.trainer.telemetry.snapshot();
    assert!(snap.counter("gt_slo_bad_total") >= shed.len() as u64);
}
