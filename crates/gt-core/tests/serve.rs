//! End-to-end tests of the self-healing serving supervisor: bit-identity
//! when no faults are injected, deterministic outcomes under a seeded
//! fault plan, and the full recovery ladder (retry, degrade, quarantine)
//! on a multi-batch serving loop — with zero panics throughout.

use gt_core::{
    BatchOutcome, DegradeAction, FailReason, Framework, GraphData, GraphTensor, GtVariant,
    ModelConfig, Supervisor,
};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{FaultKind, FaultPlan, FaultRule, SystemSpec};

fn data() -> GraphData {
    GraphData::synthetic(300, 3000, 16, 4, 3)
}

fn trainer() -> GraphTensor {
    let mut t = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    t.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    t
}

fn batches(n: usize) -> Vec<Vec<VId>> {
    (0..n)
        .map(|i| ((i * 16) as VId..(i * 16 + 16) as VId).collect())
        .collect()
}

#[test]
fn empty_plan_is_bit_identical_to_unsupervised() {
    let d = data();
    let mut raw = trainer();
    let mut sup = Supervisor::new(trainer(), FaultPlan::new(0));
    for b in batches(6) {
        let plain = raw.train_batch(&d, &b);
        let served = sup.serve_batch(&d, &b);
        assert_eq!(plain.loss.to_bits(), served.loss.to_bits());
        assert_eq!(served.outcome, BatchOutcome::Succeeded);
        let (p, s) = (plain.prepro.unwrap(), served.prepro.unwrap());
        assert_eq!(p.makespan_us.to_bits(), s.makespan_us.to_bits());
    }
    assert!(sup.quarantine.is_empty());
    assert_eq!(sup.backoff_paid_us, 0.0);
    assert!(!sup.is_prepro_degraded());
}

#[test]
fn same_seed_and_plan_give_identical_outcomes() {
    let d = data();
    let plan = FaultPlan::new(42)
        .with_transfer_failure(0.4)
        .with_straggler(0, 4.0)
        .with_contention_spike(2.0, 0.3);
    let run = || {
        let mut sup = Supervisor::new(trainer(), plan.clone());
        let reports: Vec<_> = batches(8).iter().map(|b| sup.serve_batch(&d, b)).collect();
        let outcomes: Vec<BatchOutcome> = reports.iter().map(|r| r.outcome).collect();
        let losses: Vec<u32> = reports.iter().map(|r| r.loss.to_bits()).collect();
        (
            outcomes,
            losses,
            sup.quarantine.clone(),
            sup.backoff_paid_us,
        )
    };
    let (o1, l1, q1, b1) = run();
    let (o2, l2, q2, b2) = run();
    assert_eq!(o1, o2);
    assert_eq!(l1, l2);
    assert_eq!(q1, q2);
    assert_eq!(b1.to_bits(), b2.to_bits());
}

#[test]
fn transient_transfer_failures_are_retried_with_backoff() {
    let d = data();
    // 60% failure per attempt: most batches need at least one retry, and
    // with 3 retries almost all eventually clear.
    let plan = FaultPlan::new(7).with_transfer_failure(0.6);
    let mut sup = Supervisor::new(trainer(), plan);
    let reports: Vec<_> = batches(10).iter().map(|b| sup.serve_batch(&d, b)).collect();
    let recovered = reports
        .iter()
        .filter(|r| matches!(r.outcome, BatchOutcome::Recovered { retries } if retries > 0))
        .count();
    assert!(recovered > 0, "no batch ever needed a retry");
    assert!(sup.backoff_paid_us > 0.0);
    for r in &reports {
        match r.outcome {
            BatchOutcome::Succeeded | BatchOutcome::Recovered { .. } => {
                assert!(r.loss.is_finite())
            }
            BatchOutcome::Quarantined { reason, attempts } => {
                assert_eq!(reason, FailReason::TransferFailure);
                assert_eq!(attempts, 4); // 1 attempt + 3 retries
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(
        sup.quarantine.len(),
        reports
            .iter()
            .filter(|r| matches!(r.outcome, BatchOutcome::Quarantined { .. }))
            .count()
    );
}

#[test]
fn always_failing_transfers_quarantine_the_batch() {
    let d = data();
    let mut sup = Supervisor::new(trainer(), FaultPlan::new(1).with_transfer_failure(1.0));
    let r = sup.serve_batch(&d, &batches(1)[0]);
    assert_eq!(
        r.outcome,
        BatchOutcome::Quarantined {
            reason: FailReason::TransferFailure,
            attempts: 4,
        }
    );
    assert!(r.loss.is_nan());
    assert_eq!(sup.quarantine.len(), 1);
    assert_eq!(sup.quarantine[0].batch_index, 0);
    assert_eq!(sup.quarantine[0].attempts, 4);
}

#[test]
fn invalid_batches_are_quarantined_without_touching_the_trainer() {
    let d = data();
    let mut sup = Supervisor::new(trainer(), FaultPlan::new(0));
    // Out-of-range vertex id.
    let r = sup.serve_batch(&d, &[5, 9999]);
    assert_eq!(
        r.outcome,
        BatchOutcome::Quarantined {
            reason: FailReason::InvalidBatch,
            attempts: 0,
        }
    );
    // Empty batch.
    let r = sup.serve_batch(&d, &[]);
    assert!(matches!(r.outcome, BatchOutcome::Quarantined { .. }));
    // Duplicate ids: legal for the sampler (BPR triples) but not for
    // supervised serving, where labels are gathered per batch entry.
    let r = sup.serve_batch(&d, &[1, 1, 1]);
    assert!(matches!(
        r.outcome,
        BatchOutcome::Quarantined {
            reason: FailReason::InvalidBatch,
            attempts: 0,
        }
    ));
    assert_eq!(sup.quarantine.len(), 3);
    // A good batch still trains afterwards.
    let r = sup.serve_batch(&d, &batches(1)[0]);
    assert_eq!(r.outcome, BatchOutcome::Succeeded);
}

#[test]
fn persistent_memory_pressure_halves_the_batch() {
    let d = data();
    let full: Vec<VId> = (0..16).collect();
    let half: Vec<VId> = full[..8].to_vec();
    // Calibrate: find a capacity between the half-batch and full-batch
    // peak footprints so the full batch OOMs but its half fits.
    let peak_of = |b: &[VId]| {
        let mut probe = trainer();
        probe.train_batch(&d, b).sim.memory.peak()
    };
    let (peak_half, peak_full) = (peak_of(&half), peak_of(&full));
    assert!(peak_half < peak_full);
    let device_mem = SystemSpec::tiny().gpu.device_mem_bytes;
    let fraction = ((peak_half + peak_full) / 2) as f64 / device_mem as f64;

    // Pressure afflicts every attempt of batch 0 only.
    let plan = FaultPlan::new(3).with_memory_pressure(fraction, 0, Some(1));
    let mut sup = Supervisor::new(trainer(), plan);
    let r = sup.serve_batch(&d, &full);
    match r.outcome {
        BatchOutcome::Degraded {
            action: DegradeAction::HalvedBatch { from, to },
            retries,
        } => {
            assert_eq!(from, 16);
            assert_eq!(to, 8);
            assert!(retries >= 2, "needs two OOMs before halving");
        }
        other => panic!("expected HalvedBatch degradation, got {other:?}"),
    }
    assert!(r.loss.is_finite());
    // The next batch is unafflicted and trains at full size.
    let r = sup.serve_batch(&d, &full);
    assert_eq!(r.outcome, BatchOutcome::Succeeded);
}

#[test]
fn repeated_prepro_stalls_serialize_the_pipeline() {
    let d = data();
    let mut t = trainer();
    t.variant = GtVariant::Prepro; // pipelined preprocessing
    let mut sup = Supervisor::new(t, FaultPlan::new(0));
    sup.config.prepro_timeout_us = 1.0; // everything "stalls"
    sup.config.stall_strikes = 2;
    let r0 = sup.serve_batch(&d, &batches(1)[0]);
    assert_eq!(r0.outcome, BatchOutcome::Succeeded); // first strike
    assert!(!sup.is_prepro_degraded());
    let r1 = sup.serve_batch(&d, &batches(2)[1]);
    assert_eq!(
        r1.outcome,
        BatchOutcome::Degraded {
            action: DegradeAction::SerializedPrepro,
            retries: 0,
        }
    );
    assert!(sup.is_prepro_degraded());
    // Later batches run serialized (override is sticky) and report normally.
    let r2 = sup.serve_batch(&d, &batches(3)[2]);
    assert_eq!(r2.outcome, BatchOutcome::Succeeded);
}

#[test]
fn multi_batch_demo_under_mixed_faults_never_panics() {
    // The acceptance demo: a serving loop under transfer failures, one
    // straggler core, and a forced OOM window — every batch resolves to a
    // structured outcome, nothing panics.
    let d = data();
    let bs = batches(10);
    // Calibrate the pressure against batch 4's actual footprint *in
    // sequence*: the sampler seed advances with each trained batch, so the
    // probe must train the four prior batches first.
    let peak_of = |b: &[VId]| {
        let mut probe = trainer();
        for prior in &bs[..4] {
            probe.train_batch(&d, prior);
        }
        probe.train_batch(&d, b).sim.memory.peak()
    };
    let (peak_half, peak_full) = (peak_of(&bs[4][..8]), peak_of(&bs[4]));
    assert!(peak_half < peak_full);
    let device_mem = SystemSpec::tiny().gpu.device_mem_bytes;
    let fraction = ((peak_half + peak_full) / 2) as f64 / device_mem as f64;

    // Flaky transfers on every batch except the OOM window (batch 4 needs
    // its retry budget for the memory-pressure ladder), plus a straggler.
    let flaky = |from: usize, until: Option<usize>| FaultRule {
        kind: FaultKind::TransferFailure,
        probability: 0.35,
        from_batch: from,
        until_batch: until,
        transient: true,
    };
    let plan = FaultPlan::new(2026)
        .with_rule(flaky(0, Some(4)))
        .with_rule(flaky(5, None))
        .with_straggler(0, 4.0)
        .with_memory_pressure(fraction, 4, Some(5)); // forced OOM on batch 4
    let mut sup = Supervisor::new(trainer(), plan);
    let reports: Vec<_> = batches(10).iter().map(|b| sup.serve_batch(&d, b)).collect();

    let trained = reports.iter().filter(|r| r.outcome.trained()).count();
    assert!(trained >= 7, "only {trained}/10 batches trained");
    for r in &reports {
        if r.outcome.trained() {
            assert!(r.loss.is_finite());
        } else {
            assert!(r.loss.is_nan());
        }
    }
    // The forced-OOM batch degraded rather than failing outright.
    assert!(
        matches!(
            reports[4].outcome,
            BatchOutcome::Degraded {
                action: DegradeAction::HalvedBatch { .. },
                ..
            }
        ),
        "batch 4 outcome: {:?}",
        reports[4].outcome
    );
    assert_eq!(sup.batches_served(), 10);
}
