//! DKP drift monitoring end to end: a deliberately mis-fitted cost model
//! is detected, a sliding-window refit restores the correct placement, and
//! a degenerate refit window degrades to the static fallback.

use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::framework::Framework;
use gt_core::napa::Pull;
use gt_core::orchestrator::{CostDkp, CostModel, Dims, DriftConfig, DriftMonitor, Placement};
use gt_core::trainer::{DkpCounters, GraphTensor, GtVariant};
use gt_graph::convert::{coo_to_csc, coo_to_csr};
use gt_graph::{Coo, Csr, VId};
use gt_sample::{LayerGraph, SamplerConfig};
use gt_sim::{DeviceSpec, SimContext, SystemSpec};
use gt_tensor::dfg::{ExecCtx, Op, ParamStore};
use gt_tensor::init::xavier;
use gt_tensor::sparse::Reduce;
use std::sync::Arc;

fn trainer() -> GraphTensor {
    let mut t = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    t.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    t.calibration_batches = 2;
    t.telemetry = gt_telemetry::Telemetry::recording();
    t
}

/// Reference dims where any sane fit prefers combination-first: 4353-dim
/// features shrink to 64, cutting aggregation traffic ~68×.
fn heavy_dims() -> Dims {
    Dims {
        n_src: 30_000,
        n_dst: 8_000,
        n_edges: 60_000,
        n_feat: 4353,
        n_hid: 64,
    }
}

#[test]
fn drift_detects_a_sabotaged_fit_and_refits() {
    let d = GraphData::synthetic(300, 3000, 16, 4, 3);
    let mut t = trainer();
    let batch: Vec<VId> = (0..16).collect();

    // Calibrate; the fitted model prefers combination-first for heavy dims.
    t.train_batch(&d, &batch);
    t.train_batch(&d, &batch);
    let cost = Arc::clone(t.cost_model());
    assert!(cost.fit_error().is_some());
    assert_eq!(
        cost.decide(&heavy_dims(), false, true),
        Placement::CombinationFirst
    );
    assert_eq!(
        t.drift_monitor().decisions(),
        0,
        "pre-fit decisions counted"
    );

    // Sabotage: zero coefficients predict 0 µs for everything. Every APE is
    // exactly 1.0 and every decision is a misprediction (observed > 0 =
    // predicted alternative); the zero-cost tie decides aggregation-first.
    cost.set_coefficients([0.0; 4]);
    assert_eq!(
        cost.decide(&heavy_dims(), false, true),
        Placement::AggregationFirst
    );

    // Two batches × two layers = 4 decisions: hand-check the bookkeeping.
    t.train_batch(&d, &batch);
    t.train_batch(&d, &batch);
    let drift = Arc::clone(t.drift_monitor());
    assert_eq!(drift.decisions(), 4);
    assert_eq!(drift.mispredictions(), 4);
    let ewma = drift.ewma_ape().unwrap();
    assert!((ewma - 1.0).abs() < 1e-12, "ewma {ewma}");
    assert_eq!(drift.refits(), 0);

    // Keep training: min_decisions (8) arms the trigger, then the window
    // (8 more decisions) collects fresh samples and refits.
    for _ in 0..10 {
        t.train_batch(&d, &batch);
    }
    assert_eq!(drift.refits(), 1, "refit did not fire");
    assert!(!cost.is_static_fallback());
    let err = cost.fit_error().unwrap();
    assert!(err < 0.5, "refit residual too large: {err}");
    // The refit restored the correct placement.
    assert_eq!(
        cost.decide(&heavy_dims(), false, true),
        Placement::CombinationFirst
    );

    // The telemetry counters mirror the monitor exactly.
    let snap = t.telemetry.snapshot();
    assert_eq!(snap.counter("gt_dkp_decisions_total"), drift.decisions());
    assert_eq!(
        snap.counter("gt_dkp_mispredictions_total"),
        drift.mispredictions()
    );
    assert_eq!(snap.counter("gt_dkp_refits_total"), 1);
    assert!(snap.gauge("gt_dkp_residual_ewma").is_some());
    let events = t.telemetry.events();
    assert!(events.iter().any(|e| e.name == "dkp_decision"));
    assert!(events.iter().any(|e| e.name == "dkp_refit"));
}

#[test]
fn healthy_fit_never_refits() {
    let d = GraphData::synthetic(300, 3000, 16, 4, 3);
    let mut t = trainer();
    let batch: Vec<VId> = (0..16).collect();
    for _ in 0..12 {
        t.train_batch(&d, &batch);
    }
    let drift = t.drift_monitor();
    assert!(drift.decisions() > 0);
    assert_eq!(drift.refits(), 0, "healthy model refitted");
    assert!(!t.cost_model().is_static_fallback());
}

fn layer() -> Arc<LayerGraph> {
    let coo = Coo::from_edges(4, &[(0, 0), (1, 0), (2, 0), (1, 1), (3, 1), (2, 2), (0, 2)]);
    let (csr_full, _) = coo_to_csr(&coo);
    let csr = Csr::new(csr_full.indptr[..=3].to_vec(), csr_full.srcs.clone());
    let (csc, _) = coo_to_csc(&coo);
    Arc::new(LayerGraph {
        csr,
        csc,
        num_dst: 3,
        num_src: 4,
    })
}

/// Satellite (f): a refit over a degenerate sample window (every sample the
/// same layer shape → singular normal equations) must latch the static
/// aggregation-first fallback instead of trusting an unfittable model.
#[test]
fn singular_refit_degrades_to_static_fallback() {
    let cost = Arc::new(CostModel::from_device(&DeviceSpec::tiny()));
    // A valid initial fit (varied shapes), then sabotage.
    for i in 1..30u64 {
        let agg = if i % 2 == 0 { (i * 1000) as f64 } else { 0.0 };
        if i % 2 == 0 {
            cost.record_agg_sample(agg, 7.0 + 3.0e-5 * agg);
        } else {
            cost.record_comb_sample(i as usize * 100, 32 + i as usize, 16, 1, (7 + i) as f64);
        }
    }
    assert!(cost.fit().is_some());
    cost.set_coefficients([0.0; 4]);

    let drift = Arc::new(DriftMonitor::new(DriftConfig {
        min_decisions: 2,
        window_decisions: 3,
        ..Default::default()
    }));
    let mut params = ParamStore::new();
    params.register("w", xavier(4, 2, 5));
    let node = CostDkp::new(
        Pull::new(layer(), Reduce::Mean),
        "w".into(),
        None,
        Arc::clone(&cost),
        true,
        false,
        Arc::new(DkpCounters::default()),
        Some(Arc::clone(&drift)),
    );
    let xval = xavier(4, 4, 1);
    let mut sim = SimContext::new(DeviceSpec::tiny());

    // The same shape every iteration: once the window opens, every fresh
    // sample is identical and the refit is singular.
    for _ in 0..8 {
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let out = node.forward(&[&xval], &mut ctx);
        let g = gt_tensor::dense::Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.len()]);
        node.backward(&[&xval], &out, &g, &mut ctx);
    }
    assert_eq!(drift.refits(), 1);
    assert!(
        cost.is_static_fallback(),
        "singular refit did not latch the static fallback"
    );
    // Placement degrades to the framework default, and further decisions
    // stop feeding the monitor (a forced placement carries no signal).
    assert_eq!(
        cost.decide(&heavy_dims(), false, true),
        Placement::AggregationFirst
    );
    let decisions_at_latch = drift.decisions();
    let mut ctx = ExecCtx {
        sim: &mut sim,
        params: &mut params,
    };
    let out = node.forward(&[&xval], &mut ctx);
    let g = gt_tensor::dense::Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.len()]);
    node.backward(&[&xval], &out, &g, &mut ctx);
    assert_eq!(drift.decisions(), decisions_at_latch);
}
