//! End-to-end cluster robustness tests.
//!
//! The load-bearing property mirrors the single-node durability suite:
//! **kill-any-worker-at-any-batch bit-identity**. A cluster run that loses
//! a worker mid-serving must detect the death, re-replay the partition from
//! the journal, resume at the exact batch index, and finish with byte-for-
//! byte the parameters and outcome stream of a run that never lost anyone —
//! at every worker count. Hedging must be pure virtual time (identical
//! model bytes hedged or not) and its counters must reconcile exactly
//! against the journal's hedge records.

use gt_core::journal;
use gt_core::{
    ClusterConfig, ClusterSupervisor, DurabilityConfig, GraphData, GraphTensor, GtError, GtVariant,
    ModelConfig, Partition, Supervisor,
};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{ClusterSpec, CrashSite, FaultPlan, HeartbeatConfig, SystemSpec};
use gt_telemetry::ToJson;
use gt_tensor::checkpoint;
use std::path::{Path, PathBuf};

fn data() -> GraphData {
    GraphData::synthetic(300, 3000, 16, 4, 3)
}

fn trainer() -> GraphTensor {
    let mut t = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    t.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    t
}

/// Mostly clean batches plus one poison batch (duplicate ids) so the
/// journal carries quarantine records through recovery too.
fn batches(n: usize) -> Vec<Vec<VId>> {
    (0..n)
        .map(|i| {
            if i == 2 {
                vec![5, 5, 6]
            } else {
                ((i * 16) as VId..(i * 16 + 16) as VId).collect()
            }
        })
        .collect()
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gt_cluster_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cluster_config(workers: usize, hedging: bool) -> ClusterConfig {
    ClusterConfig {
        spec: ClusterSpec::tiny(workers),
        partition: Partition::VertexCut,
        heartbeat: HeartbeatConfig::default(),
        hedging,
        hedge_factor: 2.5,
    }
}

/// Drive a cluster over the workload; returns the supervisor for
/// inspection plus the journaled (index, outcome) stream — the canonical
/// "outcome stream" the acceptance criteria compare.
fn run_cluster(
    workers: usize,
    plan: FaultPlan,
    hedging: bool,
    dir: &Path,
    n: usize,
) -> (ClusterSupervisor, Vec<(usize, String)>) {
    let factory_plan = plan.clone();
    let mut cs = ClusterSupervisor::new(
        move || Supervisor::new(trainer(), factory_plan.clone()),
        cluster_config(workers, hedging),
    );
    cs.make_durable(DurabilityConfig {
        dir: dir.to_path_buf(),
        checkpoint_every: 2,
    })
    .unwrap();
    let d = data();
    let bs = batches(n);
    // Drive by the serving index, not by call count: a crash recovered
    // after commit folds its batch in during replay.
    while cs.supervisor.batches_served() < n {
        let i = cs.supervisor.batches_served();
        cs.serve_batch(&d, &bs[i]).unwrap();
    }
    let stream = outcome_stream(dir);
    (cs, stream)
}

/// The journaled batch outcome stream: (batch_index, outcome JSON).
fn outcome_stream(dir: &Path) -> Vec<(usize, String)> {
    let cfg = DurabilityConfig::new(dir);
    let scan = journal::read_journal(cfg.journal_path()).unwrap();
    scan.records
        .iter()
        .filter(|r| journal::record_type(r) == Some("batch"))
        .map(|r| {
            (
                journal::record_batch_index(r).unwrap(),
                r.get("outcome").unwrap().to_json_string(),
            )
        })
        .collect()
}

#[test]
fn fault_free_cluster_matches_single_node_numerics_at_every_worker_count() {
    let n = 5;
    // Single-node reference.
    let d = data();
    let mut single = Supervisor::new(trainer(), FaultPlan::new(42));
    let mut ref_outcomes = Vec::new();
    for b in batches(n) {
        let r = single.serve_batch(&d, &b);
        ref_outcomes.push(r.outcome.to_json().to_json_string());
    }
    let ref_params = checkpoint::to_bytes(single.trainer.params());

    for workers in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("faultfree_w{workers}"));
        let (cs, stream) = run_cluster(workers, FaultPlan::new(42), true, &dir, n);
        assert_eq!(
            checkpoint::to_bytes(cs.supervisor.trainer.params()),
            ref_params,
            "{workers} workers must not perturb the numerics"
        );
        let outcomes: Vec<String> = stream.into_iter().map(|(_, o)| o).collect();
        assert_eq!(outcomes, ref_outcomes);
        let s = cs.summary();
        assert_eq!(s.recoveries, 0);
        assert_eq!(s.hedges_launched, 0, "uniform workers must not hedge");
        if workers == 1 {
            assert_eq!(s.collective_us, 0.0, "a lone worker gathers nothing");
        } else {
            assert!(s.collective_us > 0.0);
        }
        assert!(s.clock_us > 0.0);
    }
}

#[test]
fn kill_any_worker_at_any_batch_recovers_bit_identically() {
    let n = 5;
    for workers in [1usize, 2, 4] {
        let ref_dir = tmp_dir(&format!("killref_w{workers}"));
        let (ref_cs, ref_stream) = run_cluster(workers, FaultPlan::new(42), false, &ref_dir, n);
        let ref_params = checkpoint::to_bytes(ref_cs.supervisor.trainer.params());
        for kill_batch in [1usize, 3] {
            let victim = kill_batch % workers;
            let dir = tmp_dir(&format!("kill_w{workers}_b{kill_batch}"));
            let plan = FaultPlan::new(42).with_worker_kill(kill_batch, victim);
            let (cs, stream) = run_cluster(workers, plan, false, &dir, n);
            assert_eq!(
                checkpoint::to_bytes(cs.supervisor.trainer.params()),
                ref_params,
                "kill worker {victim} at batch {kill_batch} ({workers} workers) \
                 must recover to identical bytes"
            );
            assert_eq!(stream, ref_stream, "outcome stream must survive the kill");
            let s = cs.summary();
            assert_eq!(s.recoveries, 1);
            assert!(
                s.recovery_virtual_us > 0.0,
                "detection latency must be charged"
            );
            // The victim's partition was adopted by a survivor (unless the
            // cluster is a single worker, which restarts in place).
            if workers > 1 {
                assert!(!cs.alive()[victim]);
                assert!(cs.owners().iter().all(|&o| o != victim));
            } else {
                assert!(cs.alive()[0], "sole worker restarts in place");
            }
        }
    }
}

#[test]
fn crash_mid_batch_is_recovered_by_the_cluster_layer() {
    let n = 5;
    let ref_dir = tmp_dir("crashref");
    let (ref_cs, ref_stream) = run_cluster(2, FaultPlan::new(42), false, &ref_dir, n);
    let ref_params = checkpoint::to_bytes(ref_cs.supervisor.trainer.params());
    for site in [
        CrashSite::MidJournal,
        CrashSite::MidCheckpoint,
        CrashSite::AfterCommit,
    ] {
        let dir = tmp_dir(&format!("crash_{}", site.label()));
        let plan = FaultPlan::new(42).with_crash_at(3, site);
        let (cs, stream) = run_cluster(2, plan, false, &dir, n);
        assert_eq!(
            checkpoint::to_bytes(cs.supervisor.trainer.params()),
            ref_params,
            "crash at {} must recover to identical bytes",
            site.label()
        );
        assert_eq!(stream, ref_stream);
        assert_eq!(cs.summary().recoveries, 1);
    }
}

#[test]
fn hedging_is_pure_virtual_time_and_reconciles_with_the_journal() {
    let n = 5;
    let cores = SystemSpec::tiny().host.cores;
    // Worker 3's first core runs 64× slower: its stage time dwarfs the
    // median every batch, so every trained batch hedges.
    let plan = || FaultPlan::new(42).with_straggler(3 * cores, 64.0);

    let hedged_dir = tmp_dir("hedged");
    let (hedged, hedged_stream) = run_cluster(4, plan(), true, &hedged_dir, n);
    let unhedged_dir = tmp_dir("unhedged");
    let (unhedged, unhedged_stream) = run_cluster(4, plan(), false, &unhedged_dir, n);

    assert_eq!(
        checkpoint::to_bytes(hedged.supervisor.trainer.params()),
        checkpoint::to_bytes(unhedged.supervisor.trainer.params()),
        "hedging must never touch model bytes"
    );
    assert_eq!(hedged_stream, unhedged_stream);

    let s = hedged.summary();
    assert!(s.hedges_launched > 0, "the straggler must trigger hedges");
    assert!(s.hedges_won > 0, "a 64× straggler must lose to its backup");
    assert_eq!(unhedged.summary().hedges_launched, 0);

    // The counters reconcile exactly against the journal's hedge records.
    let (launched, won) = hedged.hedge_journal_counts().unwrap();
    assert_eq!((s.hedges_launched, s.hedges_won), (launched, won));

    // Hedging shortens the modeled clock: the backup finishes the
    // straggler's partition earlier than the straggler would.
    assert!(
        hedged.summary().clock_us < unhedged.summary().clock_us,
        "hedged {} !< unhedged {}",
        hedged.summary().clock_us,
        unhedged.summary().clock_us
    );

    // The hedge counters survive a kill-and-recover cycle: they are
    // rebuilt from the journal, not from process memory.
    let plan2 = plan().with_worker_kill(4, 1);
    let dir2 = tmp_dir("hedged_killed");
    let (recovered, _) = run_cluster(4, plan2, true, &dir2, n);
    let (launched2, won2) = recovered.hedge_journal_counts().unwrap();
    let s2 = recovered.summary();
    assert_eq!((s2.hedges_launched, s2.hedges_won), (launched2, won2));
    assert!(s2.recoveries >= 1);
}

#[test]
fn interleaved_worker_tags_replay_cleanly() {
    let n = 6;
    let dir = tmp_dir("interleave");
    let (_cs, _) = run_cluster(3, FaultPlan::new(42), false, &dir, n);
    let cfg = DurabilityConfig::new(&dir);

    // The journal interleaves all three worker tags, strictly increasing
    // per tag.
    let scan = journal::read_journal(cfg.journal_path()).unwrap();
    let tags: Vec<(usize, usize)> = scan
        .records
        .iter()
        .filter(|r| journal::record_type(r) == Some("batch"))
        .map(|r| {
            (
                journal::record_worker(r).expect("cluster records are tagged"),
                journal::record_batch_index(r).unwrap(),
            )
        })
        .collect();
    let distinct: std::collections::BTreeSet<usize> = tags.iter().map(|&(w, _)| w).collect();
    assert_eq!(distinct.len(), 3, "all workers must appear: {tags:?}");
    for w in &distinct {
        let per: Vec<usize> = tags
            .iter()
            .filter(|&&(t, _)| t == *w)
            .map(|&(_, i)| i)
            .collect();
        assert!(per.windows(2).all(|p| p[0] < p[1]), "worker {w}: {per:?}");
    }

    // A fresh supervisor replays the interleaved journal without
    // complaint and lands on the same parameters.
    let mut fresh = Supervisor::new(trainer(), FaultPlan::new(42));
    let rec = fresh.recover(&data(), cfg).unwrap();
    assert_eq!(rec.batches_replayed, n);
}

#[test]
fn shuffled_journal_is_rejected_not_silently_reordered() {
    let n = 4;
    let dir = tmp_dir("shuffled");
    let (_cs, _) = run_cluster(2, FaultPlan::new(42), false, &dir, n);
    let cfg = DurabilityConfig::new(&dir);
    let scan = journal::read_journal(cfg.journal_path()).unwrap();

    // Swap the first two batch records and rewrite the journal.
    let mut records = scan.records.clone();
    let batch_pos: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| journal::record_type(r) == Some("batch"))
        .map(|(i, _)| i)
        .collect();
    records.swap(batch_pos[0], batch_pos[1]);
    rewrite(&cfg, &records);

    let mut fresh = Supervisor::new(trainer(), FaultPlan::new(42));
    match fresh.recover(&data(), cfg.clone()) {
        Err(GtError::ReplayDiverged { detail, .. }) => {
            assert!(
                detail.contains("out of order"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("swapped journal must diverge, got {other:?}"),
    }
}

#[test]
fn duplicate_worker_record_trips_the_per_worker_invariant() {
    let n = 4;
    let dir = tmp_dir("dup_tag");
    let (_cs, _) = run_cluster(2, FaultPlan::new(42), false, &dir, n);
    let cfg = DurabilityConfig::new(&dir);
    let scan = journal::read_journal(cfg.journal_path()).unwrap();

    // Re-append a copy of the first tagged batch record at the tail: its
    // worker has already journaled a later batch, so the per-worker
    // ordering check must fire (before the global index check reads it as
    // a mere gap).
    let mut records = scan.records.clone();
    let first_batch = records
        .iter()
        .find(|r| journal::record_type(r) == Some("batch"))
        .unwrap()
        .clone();
    records.push(first_batch);
    rewrite(&cfg, &records);

    let mut fresh = Supervisor::new(trainer(), FaultPlan::new(42));
    match fresh.recover(&data(), cfg.clone()) {
        Err(GtError::ReplayDiverged { detail, .. }) => {
            assert!(
                detail.contains("per-worker ordering"),
                "unexpected detail: {detail}"
            );
        }
        other => panic!("duplicated record must diverge, got {other:?}"),
    }
}

#[test]
fn heartbeat_drops_raise_false_suspicions_but_never_recover() {
    let n = 4;
    let dir = tmp_dir("hb_drop");
    // 9 dropped beats widen the gap to 10× the nominal interval — past the
    // phi threshold of 8 — on a worker that is perfectly alive.
    let plan = FaultPlan::new(42).with_heartbeat_drop(1, 1, 9);
    let (cs, stream) = run_cluster(2, plan, false, &dir, n);
    let s = cs.summary();
    assert!(
        s.false_suspicions > 0,
        "the silence must cross the threshold"
    );
    assert_eq!(
        s.recoveries, 0,
        "a false suspicion must never trigger recovery"
    );
    assert!(cs.alive().iter().all(|&a| a));

    // And the run is numerically indistinguishable from fault-free.
    let ref_dir = tmp_dir("hb_ref");
    let (ref_cs, ref_stream) = run_cluster(2, FaultPlan::new(42), false, &ref_dir, n);
    assert_eq!(
        checkpoint::to_bytes(cs.supervisor.trainer.params()),
        checkpoint::to_bytes(ref_cs.supervisor.trainer.params())
    );
    assert_eq!(stream, ref_stream);
}

#[test]
fn false_suspicion_counter_reconciles_exactly_with_injected_drops() {
    let n = 6;
    for workers in [2usize, 4] {
        // Two loud silences (9 dropped beats widen the gap to 10× the
        // smoothed mean, past the phi threshold of 8) on distinct live
        // workers, plus one quiet drop (2× the mean, far under it):
        // exactly two false suspicions at every worker count.
        let plan = FaultPlan::new(42)
            .with_heartbeat_drop(1, 0, 9)
            .with_heartbeat_drop(3, 1, 9)
            .with_heartbeat_drop(4, 0, 1);
        let factory_plan = plan.clone();
        let mut cs = ClusterSupervisor::new(
            move || Supervisor::new(trainer(), factory_plan.clone()),
            cluster_config(workers, false),
        );
        // The trainer's handle defaults to the (null) global; record so
        // the counter is observable.
        cs.supervisor.trainer.telemetry = gt_telemetry::Telemetry::recording();
        let dir = tmp_dir(&format!("hb_sweep_w{workers}"));
        cs.make_durable(DurabilityConfig::new(&dir)).unwrap();
        let d = data();
        let bs = batches(n);
        while cs.supervisor.batches_served() < n {
            let i = cs.supervisor.batches_served();
            cs.serve_batch(&d, &bs[i]).unwrap();
        }
        let s = cs.summary();
        assert_eq!(s.false_suspicions, 2, "{workers} workers");
        assert_eq!(s.recoveries, 0, "{workers} workers: drops never recover");
        assert!(cs.alive().iter().all(|&a| a), "{workers} workers");
        let snapshot = cs.supervisor.trainer.telemetry.snapshot();
        assert_eq!(
            snapshot.counter("gt_cluster_false_suspicions_total"),
            s.false_suspicions,
            "{workers} workers: the counter must reconcile exactly \
             against the injected drops"
        );
    }
}

#[test]
fn feature_dim_partition_serves_identically_to_vertex_cut() {
    let n = 4;
    let run = |partition: Partition, dir: &Path| {
        let mut cs = ClusterSupervisor::new(
            move || Supervisor::new(trainer(), FaultPlan::new(42)),
            ClusterConfig {
                partition,
                ..cluster_config(2, true)
            },
        );
        cs.make_durable(DurabilityConfig::new(dir)).unwrap();
        let d = data();
        let bs = batches(n);
        while cs.supervisor.batches_served() < n {
            let i = cs.supervisor.batches_served();
            cs.serve_batch(&d, &bs[i]).unwrap();
        }
        cs
    };
    let vc_dir = tmp_dir("part_vc");
    let fd_dir = tmp_dir("part_fd");
    let vc = run(Partition::VertexCut, &vc_dir);
    let fd = run(Partition::FeatureDim, &fd_dir);
    // Numerics are partition-invariant; only the modeled schedule moves.
    assert_eq!(
        checkpoint::to_bytes(vc.supervisor.trainer.params()),
        checkpoint::to_bytes(fd.supervisor.trainer.params())
    );
    // Feature-dim replicates structure work on every worker, so its
    // stages are strictly longer than a vertex cut's.
    assert!(fd.summary().clock_us > vc.summary().clock_us);
}

/// Rewrite the journal file from scratch with `records`.
fn rewrite(cfg: &DurabilityConfig, records: &[gt_telemetry::Json]) {
    let mut j = journal::Journal::create(cfg.journal_path()).unwrap();
    for r in records {
        j.append(r).unwrap();
    }
}
