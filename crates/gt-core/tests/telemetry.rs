//! Telemetry acceptance tests: the supervisor's counters must agree exactly
//! with the [`BatchOutcome`]s it returns, and a recording collector must not
//! perturb numerics relative to the null collector.

use gt_core::{
    BatchOutcome, DegradeAction, Framework, GraphData, GraphTensor, GtVariant, ModelConfig,
    Supervisor,
};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{FaultKind, FaultPlan, FaultRule, SystemSpec};
use gt_telemetry::Telemetry;

fn data() -> GraphData {
    GraphData::synthetic(300, 3000, 16, 4, 3)
}

fn trainer() -> GraphTensor {
    let mut t = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    t.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    t
}

fn batches(n: usize) -> Vec<Vec<VId>> {
    (0..n)
        .map(|i| ((i * 16) as VId..(i * 16 + 16) as VId).collect())
        .collect()
}

/// Retries implied by an outcome: the supervisor increments its retry
/// counter once per re-attempt, so `Quarantined { attempts }` paid
/// `attempts - 1` retries (and an up-front rejection paid none).
fn implied_retries(outcome: &BatchOutcome) -> u64 {
    match outcome {
        BatchOutcome::Succeeded | BatchOutcome::Failed { .. } | BatchOutcome::Shed { .. } => 0,
        BatchOutcome::Recovered { retries } | BatchOutcome::Degraded { retries, .. } => {
            *retries as u64
        }
        BatchOutcome::Quarantined { attempts, .. } => attempts.saturating_sub(1) as u64,
    }
}

/// Halving steps implied by a `HalvedBatch { from, to }`: replay the
/// supervisor's shrink rule until the final size is reached.
fn implied_halvings(outcome: &BatchOutcome, min_batch: usize) -> u64 {
    if let BatchOutcome::Degraded {
        action: DegradeAction::HalvedBatch { from, to },
        ..
    } = outcome
    {
        let mut len = *from;
        let mut steps = 0;
        while len > *to {
            len = (len / 2).max(min_batch);
            steps += 1;
        }
        steps
    } else {
        0
    }
}

#[test]
fn mixed_fault_serving_counters_match_outcomes_exactly() {
    let d = data();
    let bs = batches(10);

    // Calibrate memory pressure against batch 4's in-sequence footprint so
    // the full batch OOMs but its half fits (same setup as tests/serve.rs).
    let peak_of = |b: &[VId]| {
        let mut probe = trainer();
        for prior in &bs[..4] {
            probe.train_batch(&d, prior);
        }
        probe.train_batch(&d, b).sim.memory.peak()
    };
    let (peak_half, peak_full) = (peak_of(&bs[4][..8]), peak_of(&bs[4]));
    assert!(peak_half < peak_full);
    let device_mem = SystemSpec::tiny().gpu.device_mem_bytes;
    let fraction = ((peak_half + peak_full) / 2) as f64 / device_mem as f64;

    let flaky = |from: usize, until: Option<usize>| FaultRule {
        kind: FaultKind::TransferFailure,
        probability: 0.35,
        from_batch: from,
        until_batch: until,
        transient: true,
    };
    let plan = FaultPlan::new(2026)
        .with_rule(flaky(0, Some(4)))
        .with_rule(flaky(5, None))
        .with_straggler(0, 4.0)
        .with_memory_pressure(fraction, 4, Some(5));

    // Fresh recording handle: Telemetry::null() shares one process-global
    // registry, which other tests in this binary also touch.
    let telemetry = Telemetry::recording();
    let mut t = trainer();
    t.telemetry = telemetry.clone();
    let mut sup = Supervisor::new(t, plan);
    let min_batch = sup.config.min_batch;
    let outcomes: Vec<BatchOutcome> = bs.iter().map(|b| sup.serve_batch(&d, b).outcome).collect();

    let snap = telemetry.snapshot();
    let count = |label: &str| outcomes.iter().filter(|o| o.label() == label).count() as u64;

    assert_eq!(snap.counter("gt_serve_batches_total"), 10);
    assert_eq!(snap.counter("gt_serve_succeeded_total"), count("succeeded"));
    assert_eq!(snap.counter("gt_serve_recovered_total"), count("recovered"));
    assert_eq!(snap.counter("gt_serve_degraded_total"), count("degraded"));
    assert_eq!(
        snap.counter("gt_serve_quarantined_total"),
        count("quarantined")
    );
    assert_eq!(
        snap.counter("gt_serve_quarantined_total"),
        sup.quarantine.len() as u64
    );

    let expected_retries: u64 = outcomes.iter().map(implied_retries).sum();
    assert!(expected_retries > 0, "plan produced no retries at all");
    assert_eq!(snap.counter("gt_serve_retries_total"), expected_retries);

    let expected_halvings: u64 = outcomes
        .iter()
        .map(|o| implied_halvings(o, min_batch))
        .sum();
    assert!(expected_halvings > 0, "plan produced no OOM halvings");
    assert_eq!(snap.counter("gt_serve_halvings_total"), expected_halvings);

    // Backoff accounting: the metric is added in whole µs, so it tracks the
    // supervisor's float total to within one µs per retry.
    let backoff = snap.counter("gt_serve_backoff_us_total") as f64;
    assert!((backoff - sup.backoff_paid_us).abs() <= expected_retries as f64);

    // Each trained outcome committed exactly one training step.
    let trained = outcomes.iter().filter(|o| o.trained()).count() as u64;
    assert_eq!(snap.counter("gt_train_batches_total"), trained);

    // Every serve_batch call produced one span and one resolved-outcome event.
    let spans = telemetry.spans();
    assert_eq!(
        spans
            .iter()
            .filter(|s| s.track == "serve" && s.name == "serve_batch")
            .count(),
        10
    );
    let events = telemetry.events();
    assert_eq!(
        events
            .iter()
            .filter(|e| e.track == "serve" && e.name == "outcome")
            .count(),
        10
    );
}

#[test]
fn recording_collector_is_bit_identical_to_null() {
    let d = data();
    for seed in [3u64, 11, 29] {
        let mk = |telemetry: Telemetry| {
            let mut t = trainer();
            t.sampler.seed = seed;
            t.telemetry = telemetry;
            t
        };
        let mut plain = mk(Telemetry::null());
        let mut traced = mk(Telemetry::recording());
        for b in batches(4) {
            let a = plain.train_batch(&d, &b);
            let z = traced.train_batch(&d, &b);
            assert_eq!(a.loss.to_bits(), z.loss.to_bits(), "seed {seed}");
            let (pa, pz) = (a.prepro.unwrap(), z.prepro.unwrap());
            assert_eq!(pa.makespan_us.to_bits(), pz.makespan_us.to_bits());
        }
        assert!(!traced.telemetry.spans().is_empty());
    }
}
