//! End-to-end durability tests: crash-consistent checkpoints, the
//! write-ahead outcome journal, and replay-based recovery.
//!
//! The load-bearing property is **kill-at-any-point bit-identity**: for a
//! crash injected at every site of the durability protocol, on every batch
//! index, rebuilding a fresh supervisor and recovering from the journal —
//! then serving the remaining batches — must produce the exact final
//! parameters and outcome sequence of a run that never crashed.

use gt_core::journal;
use gt_core::{
    DurabilityConfig, GraphData, GraphTensor, GtError, GtVariant, ModelConfig, Supervisor,
};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{CrashSite, FaultPlan, SystemSpec};
use gt_telemetry::ToJson;
use gt_tensor::checkpoint;
use std::path::PathBuf;

fn data() -> GraphData {
    GraphData::synthetic(300, 3000, 16, 4, 3)
}

fn trainer() -> GraphTensor {
    let mut t = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    t.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    t
}

/// A serving workload that exercises the whole outcome alphabet: mostly
/// clean batches, transfer faults that force retries, and one poison batch
/// (duplicate ids) that gets quarantined and journaled.
fn batches(n: usize) -> Vec<Vec<VId>> {
    (0..n)
        .map(|i| {
            if i == 2 {
                vec![5, 5, 6] // duplicate ids → quarantined
            } else {
                ((i * 16) as VId..(i * 16 + 16) as VId).collect()
            }
        })
        .collect()
}

/// The base fault plan shared by crashed and uncrashed runs. The crash
/// rule is appended LAST so that (per-rule hashing) the transfer-failure
/// rolls are identical with and without it.
fn base_plan() -> FaultPlan {
    FaultPlan::new(42).with_transfer_failure(0.25)
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gt_durability_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cfg(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        checkpoint_every: 2,
    }
}

/// Serve the whole workload without any crash; return (outcome JSON
/// sequence, final params image).
fn reference_run(n: usize) -> (Vec<String>, Vec<u8>) {
    let d = data();
    let mut sup = Supervisor::new(trainer(), base_plan());
    let mut outcomes = Vec::new();
    for b in batches(n) {
        let r = sup.serve_batch(&d, &b);
        outcomes.push(r.outcome.to_json().to_json_string());
    }
    (outcomes, checkpoint::to_bytes(sup.trainer.params()))
}

#[test]
fn durable_serving_is_bit_identical_to_plain() {
    let n = 6;
    let (ref_outcomes, ref_params) = reference_run(n);
    let dir = tmp_dir("bitident");
    let d = data();
    let mut sup = Supervisor::new(trainer(), base_plan());
    sup.make_durable(cfg(&dir)).unwrap();
    let mut outcomes = Vec::new();
    for b in batches(n) {
        let r = sup.serve_durable(&d, &b).unwrap();
        outcomes.push(r.outcome.to_json().to_json_string());
    }
    assert_eq!(outcomes, ref_outcomes);
    assert_eq!(checkpoint::to_bytes(sup.trainer.params()), ref_params);

    // The on-disk checkpoint (periodic cadence: every 2 batches, so batch 5
    // committed one) is a valid artifact of some replayed prefix; after an
    // explicit final checkpoint it equals the final params exactly.
    sup.checkpoint_now().unwrap();
    let on_disk = checkpoint::load_file(cfg(&dir).checkpoint_path()).unwrap();
    assert_eq!(checkpoint::to_bytes(&on_disk), ref_params);

    // The journal holds one batch record per batch (plus quarantine and
    // checkpoint records), outcomes matching what the caller saw.
    let scan = journal::read_journal(cfg(&dir).journal_path()).unwrap();
    assert!(!scan.torn_tail);
    let journaled: Vec<String> = scan
        .records
        .iter()
        .filter(|r| journal::record_type(r) == Some("batch"))
        .map(|r| r.get("outcome").unwrap().to_json_string())
        .collect();
    assert_eq!(journaled, ref_outcomes);
    let quarantines = scan
        .records
        .iter()
        .filter(|r| journal::record_type(r) == Some("quarantine"))
        .count();
    assert_eq!(quarantines, 1, "the poison batch must be journaled");
    std::fs::remove_dir_all(&dir).ok();
}

/// THE tentpole property: inject a crash at every durability-protocol site
/// on every batch index; recover a fresh supervisor from the journal and
/// finish the workload. Final parameters and the full outcome sequence
/// must be bit-identical to the never-crashed reference.
#[test]
fn kill_at_any_point_recovers_bit_identically() {
    let n = 6;
    let (ref_outcomes, ref_params) = reference_run(n);
    let d = data();
    for site in [
        CrashSite::MidJournal,
        CrashSite::MidCheckpoint,
        CrashSite::AfterCommit,
    ] {
        for crash_batch in 0..n {
            let dir = tmp_dir(&format!("kill_{}_{crash_batch}", site.label()));
            let plan = base_plan().with_crash_at(crash_batch, site);
            let mut sup = Supervisor::new(trainer(), plan.clone());
            sup.make_durable(cfg(&dir)).unwrap();
            let all = batches(n);

            // Serve until the injected crash kills the "process".
            let mut next = 0usize;
            let mut crashed = false;
            while next < n {
                match sup.serve_durable(&d, &all[next]) {
                    Ok(_) => next += 1,
                    Err(GtError::InjectedCrash { site: s }) => {
                        assert_eq!(s, site);
                        crashed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            assert!(crashed, "crash at batch {crash_batch} never fired");
            drop(sup); // the process is dead; all in-memory state is gone

            // Restart: fresh supervisor, same configuration, recover.
            let mut sup = Supervisor::new(trainer(), plan);
            let report = sup.recover(&d, cfg(&dir)).unwrap_or_else(|e| {
                panic!("recovery failed ({} @ {crash_batch}): {e}", site.label())
            });
            let expect_replayed = match site {
                // The torn record was dropped: the crashed batch re-serves.
                CrashSite::MidJournal => crash_batch,
                // The batch committed before the crash.
                CrashSite::MidCheckpoint | CrashSite::AfterCommit => crash_batch + 1,
            };
            assert_eq!(
                report.batches_replayed,
                expect_replayed,
                "{} @ {crash_batch}",
                site.label()
            );
            assert_eq!(report.torn_tail_dropped, site == CrashSite::MidJournal);

            // Resume at the exact batch index and finish the workload.
            for b in &all[report.batches_replayed..] {
                sup.serve_durable(&d, b).unwrap_or_else(|e| {
                    panic!(
                        "post-recovery serve failed ({} @ {crash_batch}): {e}",
                        site.label()
                    )
                });
            }

            // Bit-identity of the final parameters...
            assert_eq!(
                checkpoint::to_bytes(sup.trainer.params()),
                ref_params,
                "params diverged ({} @ {crash_batch})",
                site.label()
            );
            // ...and of the complete journaled outcome sequence.
            let scan = journal::read_journal(cfg(&dir).journal_path()).unwrap();
            let journaled: Vec<String> = scan
                .records
                .iter()
                .filter(|r| journal::record_type(r) == Some("batch"))
                .map(|r| r.get("outcome").unwrap().to_json_string())
                .collect();
            assert_eq!(
                journaled,
                ref_outcomes,
                "outcomes diverged ({} @ {crash_batch})",
                site.label()
            );
            // The recovered run's checkpoint loads and reflects real state.
            let on_disk = checkpoint::load_file(cfg(&dir).checkpoint_path()).unwrap();
            assert!(on_disk.names().count() > 0);
            // No torn staging file is left behind.
            assert!(!checkpoint::tmp_path(&cfg(&dir).checkpoint_path()).exists());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Truncate the journal at (and just past) every record boundary: recovery
/// must replay exactly the surviving whole records, never panic, and leave
/// a clean appendable journal.
#[test]
fn journal_truncation_at_record_boundaries_recovers() {
    let n = 4;
    let dir = tmp_dir("trunc_source");
    let d = data();
    let mut sup = Supervisor::new(trainer(), base_plan());
    sup.make_durable(cfg(&dir)).unwrap();
    for b in batches(n) {
        sup.serve_durable(&d, &b).unwrap();
    }
    let bytes = std::fs::read(cfg(&dir).journal_path()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Record boundaries, recomputed by a raw scan of the frame headers.
    let mut boundaries = vec![8usize];
    let mut pos = 8usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        boundaries.push(pos);
    }
    assert_eq!(*boundaries.last().unwrap(), bytes.len());

    for (bi, &cut) in boundaries.iter().enumerate() {
        // Exact boundary, and a torn cut 5 bytes into the next record.
        for cut in [cut, (cut + 5).min(bytes.len())] {
            let dir = tmp_dir(&format!("trunc_{bi}_{cut}"));
            std::fs::write(cfg(&dir).journal_path(), &bytes[..cut]).unwrap();
            let mut sup = Supervisor::new(trainer(), base_plan());
            let report = sup
                .recover(&d, cfg(&dir))
                .unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            // Replayed batches = batch records wholly inside the prefix.
            let scan = journal::read_journal(cfg(&dir).journal_path()).unwrap();
            let whole_batches = scan
                .records
                .iter()
                .filter(|r| journal::record_type(r) == Some("batch"))
                .count();
            assert_eq!(report.batches_replayed, whole_batches, "cut at {cut}");
            assert!(!scan.torn_tail, "recovery must truncate the torn tail");
            // The recovered supervisor keeps serving durably.
            sup.serve_durable(&d, &[100, 101, 102]).unwrap();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Mid-file corruption (not a torn tail) is a typed error, not a panic and
/// not a silent partial recovery.
#[test]
fn midfile_journal_corruption_is_surfaced() {
    let dir = tmp_dir("midfile");
    let d = data();
    let mut sup = Supervisor::new(trainer(), base_plan());
    sup.make_durable(cfg(&dir)).unwrap();
    for b in batches(3) {
        sup.serve_durable(&d, &b).unwrap();
    }
    let path = cfg(&dir).journal_path();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[20] ^= 0x01; // inside the first record's payload
    std::fs::write(&path, &bytes).unwrap();
    let mut fresh = Supervisor::new(trainer(), base_plan());
    match fresh.recover(&d, cfg(&dir)) {
        Err(GtError::CorruptJournal { .. }) => {}
        other => panic!("expected CorruptJournal, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery under a DIFFERENT trainer configuration diverges from the
/// journal and says so — the journal's outcomes double as a cross-check.
#[test]
fn replay_divergence_is_detected() {
    let dir = tmp_dir("diverge");
    let d = data();
    let mut sup = Supervisor::new(trainer(), base_plan());
    sup.make_durable(cfg(&dir)).unwrap();
    for b in batches(4) {
        sup.serve_durable(&d, &b).unwrap();
    }
    // Same plan, different sampler seed: replayed losses (and eventually
    // outcomes or checkpoint CRCs) cannot match the journal.
    let mut other = trainer();
    other.sampler.seed = 999;
    let mut fresh = Supervisor::new(other, base_plan());
    match fresh.recover(&d, cfg(&dir)) {
        Err(GtError::ReplayDiverged { .. }) => {}
        // A different seed can by chance reproduce every outcome label —
        // but then the checkpoint CRC check must catch it instead.
        Ok(_) => panic!("divergent replay accepted"),
        Err(e) => panic!("unexpected error: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// serve_durable without make_durable/recover is a typed error.
#[test]
fn durable_calls_require_setup() {
    let d = data();
    let mut sup = Supervisor::new(trainer(), FaultPlan::new(0));
    assert!(matches!(
        sup.serve_durable(&d, &[0, 1]),
        Err(GtError::Io { .. })
    ));
    assert!(matches!(sup.checkpoint_now(), Err(GtError::Io { .. })));
}
