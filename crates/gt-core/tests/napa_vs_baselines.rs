//! Cross-module tests of the work-accounting claims that drive the paper's
//! figures, checked at the kernel level on identical layer graphs.

use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::napa::{NeighborApply, Pull};
use gt_core::prepro::run_prepro;
use gt_core::trainer::{GraphTensor, GtVariant};
use gt_sample::SamplerConfig;
use gt_sim::SystemSpec;
use gt_tensor::sparse::{EdgeOp, Reduce};
use std::sync::Arc;

fn sampled_layers(
    feature_dim: usize,
) -> (Vec<Arc<gt_sample::LayerGraph>>, gt_tensor::dense::Matrix) {
    let data = GraphData::synthetic(400, 6000, feature_dim, 4, 11);
    let batch: Vec<u32> = (0..60).collect();
    let pr = run_prepro(
        &data,
        &batch,
        &SamplerConfig {
            fanout: 6,
            layers: 2,
            seed: 2,
            ..Default::default()
        },
    );
    (pr.layers, pr.features)
}

/// NAPA's stats never charge more cache loads than edge-wise scheduling on
/// the same subgraph — for every layer of a realistic sampled batch.
#[test]
fn feature_wise_cache_dominates_every_layer() {
    let (layers, _) = sampled_layers(32);
    for layer in layers {
        let napa = Pull::new(Arc::clone(&layer), Reduce::Mean).forward_stats(32, 82);
        let edge_wise = gt_core::napa::schedule::edge_wise_cache(&layer, 128, 82);
        // Same normalization: NAPA's counter uses feature_wise_cache with
        // the same row size internally.
        let fw = gt_core::napa::schedule::feature_wise_cache(&layer, 128, 82);
        assert!(fw.loaded_bytes() <= edge_wise.loaded_bytes());
        assert!(napa.cache_loaded_bytes > 0);
    }
}

/// The edge-weighting kernels agree numerically across all three strategies
/// on every sampled layer.
#[test]
fn edge_weighting_strategies_agree() {
    let (layers, features) = sampled_layers(16);
    for layer in layers {
        for g in [EdgeOp::ElemMul, EdgeOp::ElemAdd, EdgeOp::Dot] {
            let napa = NeighborApply::new(Arc::clone(&layer), g).compute(&features);
            let oracle = gt_tensor::sparse::sddmm(&layer.csr, &features, g);
            assert!(napa.max_abs_diff(&oracle) < 1e-5, "g={g:?}");
        }
    }
}

/// DKP is a pure performance transform: training trajectories of Base-GT
/// and Dynamic-GT stay numerically close over several epochs.
#[test]
fn dkp_does_not_change_training_trajectory() {
    let data = GraphData::synthetic(300, 4000, 48, 3, 5);
    let mk = |variant| {
        let mut t = GraphTensor::new(variant, ModelConfig::gcn(2, 16, 3), SystemSpec::tiny());
        t.sampler = SamplerConfig {
            fanout: 5,
            layers: 2,
            seed: 31,
            ..Default::default()
        };
        t.lr = 0.1;
        t
    };
    let mut base = mk(GtVariant::Base);
    let mut dynamic = mk(GtVariant::Dynamic);
    for step in 0..10 {
        let batch: Vec<u32> = (step * 20..(step + 1) * 20).collect();
        let lb = gt_core::framework::Framework::train_batch(&mut base, &data, &batch).loss;
        let ld = gt_core::framework::Framework::train_batch(&mut dynamic, &data, &batch).loss;
        assert!(
            (lb - ld).abs() < 1e-3,
            "step {step}: base {lb} vs dynamic {ld}"
        );
    }
}

/// GCN and NGCF differ exactly by the edge-weighting phase: GCN charges
/// none, NGCF charges some, and both train.
#[test]
fn model_phase_profiles() {
    use gt_sim::Phase;
    let data = GraphData::synthetic(300, 4000, 24, 3, 5);
    let batch: Vec<u32> = (0..40).collect();
    for (model, expect_weighting) in [
        (ModelConfig::gcn(2, 16, 3), false),
        (ModelConfig::ngcf(2, 16, 3), true),
        (gt_models_free::gin_like(), false),
    ] {
        let mut t = GraphTensor::new(GtVariant::Base, model, SystemSpec::tiny());
        t.sampler = SamplerConfig {
            fanout: 5,
            layers: 2,
            seed: 3,
            ..Default::default()
        };
        let r = gt_core::framework::Framework::train_batch(&mut t, &data, &batch);
        assert_eq!(r.phase_us(Phase::EdgeWeighting) > 0.0, expect_weighting);
        assert!(r.loss.is_finite());
    }
}

/// Inline GIN-like config without depending on gt-models (avoids a cycle).
mod gt_models_free {
    use gt_core::config::ModelConfig;
    use gt_tensor::sparse::Reduce;

    pub fn gin_like() -> ModelConfig {
        ModelConfig {
            name: "GIN-like".into(),
            layers: 2,
            hidden: 16,
            out_dim: 3,
            agg: Reduce::Sum,
            edge: None,
        }
    }
}
