//! Overload gateway under injected stalls + deadline pressure: the shed
//! ladder engages end to end, the shed/degrade counters reconcile exactly
//! with the completions the caller saw, and the whole resolution sequence
//! is bit-identical across `GT_THREADS` widths (docs/fault_model.md
//! §Overload shedding, docs/parallelism.md).
//!
//! The thread-width check re-executes this test binary with
//! `GT_THREADS=1` and `GT_THREADS=4` (the global pool freezes its width at
//! first use, so one process can only ever observe one width) and compares
//! the digests the two children print.

use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::framework::{BatchOutcome, ShedCause};
use gt_core::overload::{Gateway, OverloadConfig};
use gt_core::serve::Supervisor;
use gt_core::trainer::{GraphTensor, GtVariant};
use gt_graph::VId;
use gt_sample::SamplerConfig;
use gt_sim::{FaultPlan, SystemSpec};

/// Set in the re-executed child to make `digest_helper` print the digest.
const DIGEST_ENV: &str = "GT_OVERLOAD_DIGEST";

/// Drive a gateway into hard overload — a sustained 50 ms serving stall
/// against 1 ms arrivals, a 120 ms deadline, and a 4-deep queue — assert
/// every reconciliation invariant, and return a deterministic digest of
/// the full resolution sequence.
fn run_scenario() -> String {
    let plan = FaultPlan::new(7).with_serve_delay_window(50_000.0, 0, None);
    let mut trainer = GraphTensor::new(
        GtVariant::Dynamic,
        ModelConfig::gcn(2, 16, 4),
        SystemSpec::tiny(),
    );
    trainer.sampler = SamplerConfig {
        fanout: 4,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    trainer.telemetry = gt_telemetry::Telemetry::recording();
    let telemetry = trainer.telemetry.clone();
    let mut gateway = Gateway::new(
        Supervisor::new(trainer, plan),
        OverloadConfig {
            queue_capacity: 4,
            deadline_us: 120_000.0,
            degrade_watermark: 2,
            halve_watermark: 3,
            reduced_fanout: 2,
        },
    );
    let data = GraphData::synthetic(300, 3000, 16, 4, 3);

    let mut all = Vec::new();
    for i in 0..24usize {
        let batch: Vec<VId> = (0..8).map(|j| ((i * 8 + j) % 300) as VId).collect();
        all.extend(gateway.submit(&data, i as f64 * 1000.0, &batch));
        assert!(gateway.queue_depth() <= 4, "queue overflowed its bound");
    }
    all.extend(gateway.drain(&data));
    assert_eq!(all.len(), 24, "every request must resolve exactly once");

    // The ladder must actually engage: both shed causes and at least one
    // degraded service under this pressure profile.
    let count = |pred: &dyn Fn(&BatchOutcome) -> bool| {
        all.iter().filter(|c| pred(&c.outcome)).count() as u64
    };
    let queue_full = count(&|o| {
        *o == BatchOutcome::Shed {
            cause: ShedCause::QueueFull,
        }
    });
    let expired = count(&|o| {
        *o == BatchOutcome::Shed {
            cause: ShedCause::DeadlineExpired,
        }
    });
    let degraded = count(&|o| matches!(o, BatchOutcome::Degraded { .. }));
    assert!(queue_full > 0, "hard overload must shed at the queue");
    assert!(
        expired > 0,
        "the deadline watchdog must shed stale requests"
    );
    assert!(degraded > 0, "the ladder must degrade under pressure");

    // Counters ↔ outcomes, exactly: the monitoring surface may not drift
    // from what callers were told by even one request.
    let snapshot = telemetry.snapshot();
    assert_eq!(
        snapshot.counter("gt_gateway_shed_total"),
        queue_full + expired,
        "shed counter must equal shed completions"
    );
    assert_eq!(
        snapshot.counter("gt_gateway_degraded_total"),
        degraded,
        "degrade counter must equal degraded completions"
    );
    // Deadline sheds never occupied the server.
    for c in &all {
        if matches!(c.outcome, BatchOutcome::Shed { .. }) {
            assert_eq!(
                c.service_us, 0.0,
                "shed request {} was served",
                c.request_index
            );
        }
    }

    let mut digest = String::new();
    for c in &all {
        digest.push_str(&format!(
            "{}:{:?}:q{}:s{}:d{};",
            c.request_index, c.outcome, c.queued_us, c.service_us, c.done_us
        ));
    }
    digest.push_str(&format!(
        "shed={};degraded={degraded}",
        queue_full + expired
    ));
    digest
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The in-process invariants at whatever width this process runs.
#[test]
fn shed_ladder_reconciles_counters_under_stall_and_deadline_pressure() {
    let digest = run_scenario();
    // Determinism within one process, too.
    assert_eq!(digest, run_scenario());
}

/// Prints the scenario digest when [`DIGEST_ENV`] is set; a no-op test
/// otherwise. Exists to be re-executed by
/// [`shed_ladder_is_bit_identical_across_thread_widths`].
#[test]
fn digest_helper() {
    if std::env::var(DIGEST_ENV).is_err() {
        return;
    }
    println!("overload-digest={:#018x}", fnv1a(&run_scenario()));
}

/// `GT_THREADS=1` and `GT_THREADS=4` resolve the identical overloaded
/// sequence — shed set, degrade actions, virtual timestamps, everything.
#[test]
fn shed_ladder_is_bit_identical_across_thread_widths() {
    let exe = std::env::current_exe().expect("test binary path");
    let digest_at = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["digest_helper", "--exact", "--nocapture"])
            .env(DIGEST_ENV, "1")
            .env(gt_par::THREADS_ENV, threads)
            .output()
            .expect("re-exec test binary");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "GT_THREADS={threads} child failed:\n{stdout}"
        );
        // libtest's --nocapture interleaves the digest with its own
        // `test digest_helper ... ` line, so match anywhere in the line.
        stdout
            .lines()
            .find_map(|l| l.split_once("overload-digest=").map(|(_, d)| d))
            .and_then(|d| d.split_whitespace().next())
            .unwrap_or_else(|| panic!("no digest in GT_THREADS={threads} output:\n{stdout}"))
            .to_string()
    };
    let one = digest_at("1");
    let four = digest_at("4");
    assert_eq!(
        one, four,
        "overload resolution diverged between GT_THREADS=1 and GT_THREADS=4"
    );
}
