//! Property tests for the pool determinism contract (docs/parallelism.md):
//! preprocessing and the NAPA kernels must produce **bit-identical** output
//! at any worker count — `GT_THREADS=8` equals `GT_THREADS=1` exactly — and
//! repeated runs with the same seed must agree.

use gt_core::data::GraphData;
use gt_core::napa::{NeighborApply, Pull};
use gt_core::prepro::{run_prepro_with_pool, PreproResult};
use gt_par::ThreadPool;
use gt_sample::SamplerConfig;
use gt_tensor::dense::Matrix;
use gt_tensor::sparse::{EdgeOp, Reduce};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The widths under test; pools are created once (their workers persist).
fn pools() -> &'static [&'static ThreadPool; 3] {
    static POOLS: OnceLock<[&'static ThreadPool; 3]> = OnceLock::new();
    POOLS.get_or_init(|| {
        [
            ThreadPool::leaked(1),
            ThreadPool::leaked(2),
            ThreadPool::leaked(8),
        ]
    })
}

fn assert_same_prepro(a: &PreproResult, b: &PreproResult) {
    assert_eq!(a.new_to_orig, b.new_to_orig);
    assert_eq!(a.boundaries, b.boundaries);
    assert_eq!(a.features, b.features);
    assert_eq!(a.layers.len(), b.layers.len());
    for (x, y) in a.layers.iter().zip(&b.layers) {
        assert_eq!(x.csr, y.csr);
        assert_eq!(x.csc, y.csc);
        assert_eq!(x.num_dst, y.num_dst);
        assert_eq!(x.num_src, y.num_src);
    }
}

proptest! {
    /// Whole-pipeline bit-identity: S, R, and K at widths 2 and 8 equal
    /// width 1 exactly, and a same-seed re-run at width 1 is stable.
    #[test]
    fn prepro_is_bit_identical_across_widths(
        seed in 0u64..500,
        batch_len in 4usize..40,
        fanout in 2usize..8,
        layers in 1usize..3,
    ) {
        let data = GraphData::synthetic(300, 3000, 8, 4, seed);
        let batch: Vec<u32> = (0..batch_len as u32).collect();
        let cfg = SamplerConfig { fanout, layers, seed, ..Default::default() };
        let [p1, p2, p8] = pools();
        let serial = run_prepro_with_pool(&data, &batch, &cfg, p1);
        let rerun = run_prepro_with_pool(&data, &batch, &cfg, p1);
        assert_same_prepro(&serial, &rerun);
        for pool in [p2, p8] {
            let par = run_prepro_with_pool(&data, &batch, &cfg, pool);
            assert_same_prepro(&serial, &par);
        }
    }

    /// NAPA kernel bit-identity: Pull forward/backward and NeighborApply
    /// at widths 2 and 8 equal width 1 exactly (f32 `==`, not tolerance).
    #[test]
    fn napa_kernels_are_bit_identical_across_widths(
        seed in 0u64..500,
        dim in 1usize..16,
    ) {
        let data = GraphData::synthetic(200, 2000, dim, 3, seed);
        let batch: Vec<u32> = (0..16).collect();
        let cfg = SamplerConfig { fanout: 5, layers: 2, seed, ..Default::default() };
        let [p1, p2, p8] = pools();
        let pre = run_prepro_with_pool(&data, &batch, &cfg, p1);
        let layer = std::sync::Arc::clone(&pre.layers[0]);
        let feats = &pre.features;
        // Any deterministic non-uniform gradient.
        let mut grad = Matrix::zeros(layer.num_dst, dim);
        for (i, x) in grad.data_mut().iter_mut().enumerate() {
            *x = ((i % 7) as f32) - 3.0;
        }

        for agg in [Reduce::Sum, Reduce::Mean] {
            let pull1 = Pull::new(std::sync::Arc::clone(&layer), agg).with_pool(p1);
            let fwd1 = pull1.compute(feats, None);
            let (bwd1, _) = pull1.compute_backward(feats, None, &grad);
            for pool in [p2, p8] {
                let pull = Pull::new(std::sync::Arc::clone(&layer), agg).with_pool(pool);
                assert_eq!(pull.compute(feats, None).data(), fwd1.data());
                let (bwd, _) = pull.compute_backward(feats, None, &grad);
                assert_eq!(bwd.data(), bwd1.data());
            }
        }
        for g in [EdgeOp::ElemMul, EdgeOp::ElemAdd, EdgeOp::Dot] {
            let na1 = NeighborApply::new(std::sync::Arc::clone(&layer), g).with_pool(p1);
            let ew1 = na1.compute(feats);
            for pool in [p2, p8] {
                let na = NeighborApply::new(std::sync::Arc::clone(&layer), g).with_pool(pool);
                assert_eq!(na.compute(feats).data(), ew1.data());
            }
        }
    }
}
