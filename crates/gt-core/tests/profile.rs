//! Acceptance test for gt-profile against real preprocessing schedules:
//! the pipelined-relaxed strategy must show strictly lower idle (bubble)
//! percentage than the serial one on the same measured work, and the
//! what-if headroom must be consistent with the observed makespan delta.

use gt_core::data::GraphData;
use gt_core::prepro::run_prepro;
use gt_core::scheduler::{build_prepro_sim, PreproStrategy};
use gt_profile::{profile_schedule, ScheduleProfile, Stage};
use gt_sample::SamplerConfig;
use gt_sim::SystemSpec;

fn profiles() -> (ScheduleProfile, ScheduleProfile) {
    // Large enough that transfers and sampling dominate chunk overheads
    // (same shape as the trainer's pipelining test).
    let d = GraphData::synthetic(2000, 40_000, 256, 4, 3);
    let cfg = SamplerConfig {
        fanout: 10,
        layers: 2,
        seed: 11,
        ..Default::default()
    };
    let batch: Vec<_> = (0..300).collect();
    let pr = run_prepro(&d, &batch, &cfg);
    let sys = SystemSpec::tiny();

    let serial_sim = build_prepro_sim(&pr.work, &sys, PreproStrategy::Serial);
    let serial = profile_schedule(&serial_sim, &serial_sim.run());
    let relaxed_sim = build_prepro_sim(&pr.work, &sys, PreproStrategy::PipelinedRelaxed);
    let relaxed = profile_schedule(&relaxed_sim, &relaxed_sim.run());
    (serial, relaxed)
}

#[test]
fn pipelined_relaxed_has_strictly_fewer_bubbles_than_serial() {
    let (serial, relaxed) = profiles();
    assert!(
        relaxed.makespan_us < serial.makespan_us,
        "relaxed {} !< serial {}",
        relaxed.makespan_us,
        serial.makespan_us
    );
    let (si, ri) = (serial.bubbles.idle_pct(), relaxed.bubbles.idle_pct());
    assert!(
        ri < si,
        "pipelined idle {ri:.1}% not strictly below serial idle {si:.1}%"
    );
}

#[test]
fn what_if_headroom_is_consistent_with_the_makespan_delta() {
    let (serial, relaxed) = profiles();

    fn headroom(p: &ScheduleProfile, s: Stage) -> &gt_profile::WhatIf {
        p.what_if
            .iter()
            .find(|w| w.stage == s)
            .unwrap_or_else(|| panic!("no what-if entry for {}", s.label()))
    }

    // Serial: the transfer is fully exposed at the end of the chain, so a
    // free transfer would recover exactly its busy time.
    let st = headroom(&serial, Stage::Transfer);
    assert!(
        (st.headroom_us - st.busy_us).abs() < 1e-6,
        "serial transfer headroom {} != busy {}",
        st.headroom_us,
        st.busy_us
    );

    // Relaxed: the pipeline already hides part of the transfer behind
    // compute, so a free transfer recovers strictly less than its busy time.
    let rt = headroom(&relaxed, Stage::Transfer);
    assert!(
        rt.headroom_us < rt.busy_us,
        "relaxed transfer headroom {} !< busy {} (nothing overlapped?)",
        rt.headroom_us,
        rt.busy_us
    );

    // The pipelining win is bounded by what the serial schedule leaves on
    // the table: the makespan delta cannot exceed serial's total exposure.
    let delta = serial.makespan_us - relaxed.makespan_us;
    assert!(delta > 0.0);
    let serial_total_headroom: f64 = serial.what_if.iter().map(|w| w.headroom_us.max(0.0)).sum();
    assert!(
        delta <= serial_total_headroom + 1e-6,
        "delta {delta} exceeds serial headroom {serial_total_headroom}"
    );
}

#[test]
fn profile_report_renders_for_a_real_schedule() {
    let (_, relaxed) = profiles();
    let text = gt_profile::report::render(&relaxed);
    for needle in ["schedule profile:", "critical path:", "what-if headroom"] {
        assert!(text.contains(needle), "missing {needle:?}");
    }
    // The critical-path chain explains the full makespan.
    let chain: f64 = relaxed
        .critical
        .chain
        .iter()
        .map(|l| l.end_us - l.start_us)
        .sum();
    assert!((chain - relaxed.makespan_us).abs() < 1e-6);
}
