//! Recommendation training for NGCF's real use case (§I: "NGCF is
//! popularly used in recommendation systems"): Bayesian Personalized
//! Ranking over user–item bipartite graphs.
//!
//! The GNN produces an embedding per node; a (user, positive-item,
//! negative-item) triple is scored by inner products and optimized with
//! the BPR loss `−ln σ(e_u·e_p − e_u·e_n)`, back-propagated through the
//! whole NAPA pipeline via
//! [`gt_core::trainer::GraphTensor::train_batch_with_loss`].

use gt_core::data::GraphData;
use gt_core::trainer::GraphTensor;
use gt_graph::VId;
use gt_tensor::dense::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A batch of BPR triples over a bipartite graph whose users are ids
/// `[0, num_users)` and items are `[num_users, V)`.
#[derive(Debug, Clone)]
pub struct BprBatch {
    /// Users, one per triple.
    pub users: Vec<VId>,
    /// Positive (observed) items.
    pub pos: Vec<VId>,
    /// Negative (sampled, unobserved) items.
    pub neg: Vec<VId>,
}

impl BprBatch {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the batch has no triples.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The seed vertices the GNN must embed: users ++ pos ++ neg.
    pub fn seeds(&self) -> Vec<VId> {
        let mut s = Vec::with_capacity(3 * self.len());
        s.extend_from_slice(&self.users);
        s.extend_from_slice(&self.pos);
        s.extend_from_slice(&self.neg);
        s
    }
}

/// Sample `n` BPR triples: a user with at least one observed item, one of
/// its items as the positive, and a uniform non-observed item as negative.
pub fn sample_bpr_batch(data: &GraphData, num_users: usize, n: usize, seed: u64) -> BprBatch {
    assert!(num_users > 0 && num_users < data.num_vertices());
    let num_items = data.num_vertices() - num_users;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut users = Vec::with_capacity(n);
    let mut pos = Vec::with_capacity(n);
    let mut neg = Vec::with_capacity(n);
    let mut guard = 0;
    while users.len() < n && guard < 100 * n {
        guard += 1;
        let u = rng.gen_range(0..num_users as VId);
        // Observed items of u = its in-neighbors that are items (the
        // bipartite generator symmetrizes, so in-neighbors suffice).
        let items: Vec<VId> = data
            .graph
            .srcs(u)
            .iter()
            .copied()
            .filter(|&v| (v as usize) >= num_users)
            .collect();
        if items.is_empty() {
            continue;
        }
        let p = items[rng.gen_range(0..items.len())];
        // Rejection-sample a negative.
        let mut nneg = 0;
        loop {
            let cand = (num_users + rng.gen_range(0..num_items)) as VId;
            if !items.contains(&cand) || nneg > 20 {
                users.push(u);
                pos.push(p);
                neg.push(cand);
                break;
            }
            nneg += 1;
        }
    }
    BprBatch { users, pos, neg }
}

/// σ(x), numerically stable.
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// BPR loss and its gradient w.r.t. the embedding matrix. `rows` maps the
/// embedding matrix's rows to original vertex ids.
pub fn bpr_loss(embeddings: &Matrix, rows: &[VId], batch: &BprBatch) -> (f32, Matrix) {
    let index: HashMap<VId, usize> = rows
        .iter()
        .take(embeddings.rows())
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let row_of = |v: VId| {
        *index
            .get(&v)
            .expect("triple vertex missing from batch output")
    };
    let dim = embeddings.cols();
    let mut grad = Matrix::zeros(embeddings.rows(), dim);
    let mut loss = 0.0f32;
    let n = batch.len() as f32;
    for ((&u, &p), &ng) in batch.users.iter().zip(&batch.pos).zip(&batch.neg) {
        let (ru, rp, rn) = (row_of(u), row_of(p), row_of(ng));
        let eu: Vec<f32> = embeddings.row(ru).to_vec();
        let ep: Vec<f32> = embeddings.row(rp).to_vec();
        let en: Vec<f32> = embeddings.row(rn).to_vec();
        let x: f32 = eu
            .iter()
            .zip(ep.iter().zip(&en))
            .map(|(&u, (&p, &q))| u * (p - q))
            .sum();
        loss += -(sigmoid(x).max(1e-30)).ln();
        let coef = (sigmoid(x) - 1.0) / n; // dL/dx, averaged
        for k in 0..dim {
            grad.row_mut(ru)[k] += coef * (ep[k] - en[k]);
            grad.row_mut(rp)[k] += coef * eu[k];
            grad.row_mut(rn)[k] -= coef * eu[k];
        }
    }
    (loss / n, grad)
}

/// One BPR training step through the full GNN pipeline. Returns the loss.
pub fn train_bpr_batch(trainer: &mut GraphTensor, data: &GraphData, batch: &BprBatch) -> f32 {
    let seeds = batch.seeds();
    trainer
        .train_batch_with_loss(data, &seeds, |emb, rows| bpr_loss(emb, rows, batch))
        .loss
}

/// Fraction of held-out triples the model ranks correctly
/// (`e_u·e_p > e_u·e_n`) — AUC on the sampled triples.
pub fn ranking_accuracy(trainer: &mut GraphTensor, data: &GraphData, batch: &BprBatch) -> f64 {
    let seeds = batch.seeds();
    let emb = trainer.infer_batch(data, &seeds);
    // Seeds map to the first rows in order (batch prefix of the id space),
    // but duplicates collapse — rebuild the map like bpr_loss does.
    let n = batch.len();
    let mut correct = 0usize;
    // Deduplicated prefix mapping: first occurrence wins.
    let mut index: HashMap<VId, usize> = HashMap::new();
    let mut next = 0usize;
    for &v in &seeds {
        index.entry(v).or_insert_with(|| {
            let i = next;
            next += 1;
            i
        });
    }
    for ((&u, &p), &ng) in batch.users.iter().zip(&batch.pos).zip(&batch.neg) {
        let eu = emb.row(index[&u]);
        let ep = emb.row(index[&p]);
        let en = emb.row(index[&ng]);
        let sp: f32 = eu.iter().zip(ep).map(|(&a, &b)| a * b).sum();
        let sn: f32 = eu.iter().zip(en).map(|(&a, &b)| a * b).sum();
        if sp > sn {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::config::ModelConfig;
    use gt_core::trainer::GtVariant;
    use gt_graph::{generators, EmbeddingTable};
    use gt_sample::SamplerConfig;
    use gt_sim::SystemSpec;

    fn bipartite_data(users: usize, items: usize, edges: usize) -> GraphData {
        let coo = generators::bipartite(users, items, edges, 3);
        let (graph, _) = gt_graph::convert::coo_to_csr(&coo);
        let n = graph.num_vertices();
        let features = EmbeddingTable::random(n, 16, 5);
        GraphData::new(graph, features, vec![0; n], 1)
    }

    fn trainer(out_dim: usize) -> GraphTensor {
        let mut t = GraphTensor::new(
            GtVariant::Dynamic,
            ModelConfig::ngcf(2, 16, out_dim),
            SystemSpec::tiny(),
        );
        t.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 7,
            ..Default::default()
        };
        t.lr = 0.1;
        t
    }

    #[test]
    fn bpr_batch_seeds_are_triples() {
        let d = bipartite_data(40, 20, 300);
        let b = sample_bpr_batch(&d, 40, 16, 1);
        assert_eq!(b.len(), 16);
        assert_eq!(b.seeds().len(), 48);
        for (&u, (&p, &n)) in b.users.iter().zip(b.pos.iter().zip(&b.neg)) {
            assert!((u as usize) < 40);
            assert!((p as usize) >= 40);
            assert!((n as usize) >= 40);
        }
    }

    #[test]
    fn bpr_gradient_matches_finite_differences() {
        let b = BprBatch {
            users: vec![0, 1],
            pos: vec![2, 3],
            neg: vec![3, 2],
        };
        let rows: Vec<VId> = vec![0, 1, 2, 3];
        let e0 = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect());
        let (_, grad) = bpr_loss(&e0, &rows, &b);
        let eps = 1e-2f32;
        for i in 0..e0.len() {
            let mut p = e0.clone();
            p.data_mut()[i] += eps;
            let mut m = e0.clone();
            m.data_mut()[i] -= eps;
            let (lp, _) = bpr_loss(&p, &rows, &b);
            let (lm, _) = bpr_loss(&m, &rows, &b);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "elem {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn bpr_training_improves_ranking() {
        let d = bipartite_data(60, 30, 600);
        let mut t = trainer(16);
        t.lr = 0.3;
        let eval = sample_bpr_batch(&d, 60, 64, 999);
        let before = ranking_accuracy(&mut t, &d, &eval);
        let mut loss_first = 0.0;
        let mut loss_last = 0.0;
        for step in 0..100 {
            let b = sample_bpr_batch(&d, 60, 64, step);
            let loss = train_bpr_batch(&mut t, &d, &b);
            assert!(loss.is_finite());
            if step == 0 {
                loss_first = loss;
            }
            loss_last = loss;
        }
        let after = ranking_accuracy(&mut t, &d, &eval);
        assert!(
            loss_last < loss_first,
            "BPR loss did not drop: {loss_first} → {loss_last}"
        );
        assert!(
            after > before.max(0.55),
            "ranking did not improve: {before} → {after}"
        );
    }
}
