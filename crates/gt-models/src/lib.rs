//! Model zoo and training utilities.
//!
//! The paper evaluates GCN and NGCF (§VI) with hidden dimension 64; the
//! NAPA mode system also covers close relatives — "[FastGCN, JK-Net] are a
//! variation of GCN, while [GAT, session-based models] are similar to
//! NGCF" — so this crate additionally ships GIN-style sum aggregation and a
//! simplified dot-product-attention GAT as configuration presets, plus
//! epoch-level train/evaluate helpers used by the examples.

pub mod recsys;

use gt_core::config::{EdgeWeighting, HFn, ModelConfig};
use gt_core::data::GraphData;
use gt_core::framework::Framework;
use gt_core::trainer::GraphTensor;
use gt_graph::VId;
use gt_sample::BatchIter;
use gt_tensor::loss::accuracy;
use gt_tensor::sparse::{EdgeOp, Reduce};

/// The paper's hidden dimension for both models (§VI).
pub const PAPER_HIDDEN: usize = 64;

/// GCN with the paper's hyperparameters (mean aggregation, no weighting).
pub fn gcn(layers: usize, out_dim: usize) -> ModelConfig {
    ModelConfig::gcn(layers, PAPER_HIDDEN, out_dim)
}

/// NGCF with the paper's hyperparameters (mean aggregation, elementwise-
/// product similarity weights).
pub fn ngcf(layers: usize, out_dim: usize) -> ModelConfig {
    ModelConfig::ngcf(layers, PAPER_HIDDEN, out_dim)
}

/// GIN-style preset: sum aggregation (injective), no edge weighting.
pub fn gin(layers: usize, out_dim: usize) -> ModelConfig {
    ModelConfig {
        name: "GIN".into(),
        layers,
        hidden: PAPER_HIDDEN,
        out_dim,
        agg: Reduce::Sum,
        edge: None,
    }
}

/// Simplified GAT: per-edge scalar attention from the src·dst dot product,
/// scaling each source embedding (unnormalized attention — the NAPA mode
/// closest to [34]).
pub fn gat_lite(layers: usize, out_dim: usize) -> ModelConfig {
    ModelConfig {
        name: "GAT-lite".into(),
        layers,
        hidden: PAPER_HIDDEN,
        out_dim,
        agg: Reduce::Mean,
        edge: Some(EdgeWeighting {
            g: EdgeOp::Dot,
            h: HFn::Mul,
        }),
    }
}

/// Loss trajectory of training `trainer` for `epochs` epochs over all
/// vertices of `data` in batches of `batch_size`. Returns per-epoch mean
/// losses.
pub fn train_epochs(
    trainer: &mut GraphTensor,
    data: &GraphData,
    epochs: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<f32> {
    let mut curve = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let mut sum = 0.0f32;
        let mut n = 0usize;
        for batch in BatchIter::new(data.num_vertices(), batch_size, seed + epoch as u64) {
            sum += trainer.train_batch(data, &batch).loss;
            n += 1;
        }
        curve.push(sum / n.max(1) as f32);
    }
    curve
}

/// Classification accuracy of the trained model on `eval_nodes`.
pub fn evaluate(trainer: &mut GraphTensor, data: &GraphData, eval_nodes: &[VId]) -> f64 {
    let logits = trainer.infer_batch(data, eval_nodes);
    let labels = data.batch_labels(eval_nodes);
    accuracy(&logits, &labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::trainer::GtVariant;
    use gt_sample::SamplerConfig;
    use gt_sim::SystemSpec;

    fn small_trainer(model: ModelConfig) -> GraphTensor {
        let mut t = GraphTensor::new(GtVariant::Dynamic, model, SystemSpec::tiny());
        t.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 3,
            ..Default::default()
        };
        t.lr = 0.3;
        t
    }

    #[test]
    fn presets_have_expected_modes() {
        assert_eq!(gcn(2, 10).agg, Reduce::Mean);
        assert!(gcn(2, 10).edge.is_none());
        assert_eq!(gin(2, 10).agg, Reduce::Sum);
        assert_eq!(ngcf(2, 2).edge.unwrap().g, EdgeOp::ElemMul);
        assert_eq!(gat_lite(2, 2).edge.unwrap().g, EdgeOp::Dot);
        assert_eq!(gcn(3, 7).hidden, PAPER_HIDDEN);
    }

    #[test]
    fn training_curve_descends_on_learnable_data() {
        let data = GraphData::synthetic_learnable(200, 1600, 8, 2, 5);
        let mut t = small_trainer(gcn(2, 2));
        let curve = train_epochs(&mut t, &data, 6, 32, 9);
        assert_eq!(curve.len(), 6);
        let first = curve[0];
        let last = *curve.last().unwrap();
        assert!(last < first, "curve did not descend: {curve:?}");
    }

    #[test]
    fn evaluate_beats_chance_after_training() {
        let data = GraphData::synthetic_learnable(200, 1600, 8, 2, 5);
        let mut t = small_trainer(gcn(2, 2));
        // Low fanout keeps the self-loop signal strong through mean
        // aggregation (self weight (1/(fanout+1))² per layer).
        t.sampler.fanout = 2;
        train_epochs(&mut t, &data, 12, 32, 9);
        let eval: Vec<VId> = (0..100).collect();
        let acc = evaluate(&mut t, &data, &eval);
        assert!(acc > 0.55, "accuracy {acc} not above chance (0.5)");
    }

    #[test]
    fn gat_lite_trains_without_panic() {
        let data = GraphData::synthetic(150, 900, 8, 3, 5);
        let mut t = small_trainer(gat_lite(2, 3));
        let r = t.train_batch(&data, &[0, 1, 2, 3, 4]);
        assert!(r.loss.is_finite());
    }

    #[test]
    fn gin_trains_without_panic() {
        let data = GraphData::synthetic(150, 900, 8, 3, 5);
        let mut t = small_trainer(gin(2, 3));
        let r = t.train_batch(&data, &[0, 1, 2, 3, 4]);
        assert!(r.loss.is_finite());
    }
}
