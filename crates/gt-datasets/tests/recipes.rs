//! Integration tests on dataset recipes: structural-family fidelity.

use gt_datasets::{by_name, light, registry, Family, Scale};
use gt_graph::DegreeStats;

#[test]
fn families_match_structure() {
    // Power-law workloads are skewed; the grid workload is not.
    let products = by_name("products").unwrap().build(Scale::Test, 1);
    let s = DegreeStats::of_csr_nonisolated(&products.graph);
    assert!(s.std_dev > s.mean * 0.8, "products not skewed: {s:?}");

    let road = by_name("roadnet-ca").unwrap().build(Scale::Test, 1);
    let r = DegreeStats::of_csr_nonisolated(&road.graph);
    assert!(r.std_dev < 1.0, "roadnet too skewed: {r:?}");
    assert!(r.max <= 4);
}

#[test]
fn bipartite_recipes_partition_vertices() {
    for name in ["amazon", "gowalla"] {
        let spec = by_name(name).unwrap();
        assert_eq!(spec.family, Family::Bipartite);
        let data = spec.build(Scale::Test, 2);
        // Bipartite generators never produce user–user or item–item edges;
        // symmetrization keeps that property.
        let half_guess = data.num_vertices() / 2;
        let mut crossings = 0usize;
        let mut total = 0usize;
        for d in 0..data.num_vertices() as u32 {
            for &s in data.graph.srcs(d) {
                total += 1;
                if ((s as usize) < half_guess) != ((d as usize) < half_guess) {
                    crossings += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            crossings as f64 / total as f64 > 0.9,
            "{name}: only {crossings}/{total} edges cross the partition"
        );
    }
}

#[test]
fn scales_are_monotone() {
    let spec = by_name("reddit2").unwrap();
    let t = spec.build(Scale::Test, 3);
    let s = spec.build(Scale::Small, 3);
    assert!(s.num_vertices() > t.num_vertices());
    assert!(s.graph.num_edges() > t.graph.num_edges());
}

#[test]
fn light_heavy_split_is_stable() {
    let light_names: Vec<&str> = light().iter().map(|d| d.name).collect();
    assert_eq!(
        light_names,
        vec!["products", "citation2", "papers", "amazon", "reddit2"]
    );
    assert!(registry().iter().all(|d| d.out_dim >= 2));
}

#[test]
fn seeds_change_the_graph_but_not_the_shape() {
    let spec = by_name("citation2").unwrap();
    let a = spec.build(Scale::Test, 1);
    let b = spec.build(Scale::Test, 2);
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.feature_dim(), b.feature_dim());
    assert_ne!(
        a.graph.srcs(0).to_vec(),
        b.graph.srcs(0).to_vec(),
        "different seeds should change adjacency (this can flake only if \
         vertex 0 is isolated in both — regenerate with another probe)"
    );
}
