//! Seeded open-loop workload generator for the million-user serving
//! scenario (EXPERIMENTS.md "serving").
//!
//! Serving benchmarks need *open-loop* arrivals — requests land on the
//! gateway's virtual clock at times the server does not control, so queue
//! growth and shedding emerge from the offered load instead of from the
//! measurement harness. This module turns a [`WorkloadSpec`] into a
//! deterministic arrival schedule:
//!
//! * a **non-homogeneous Poisson process** (by thinning) whose rate
//!   follows a diurnal sinusoid around `1/mean_gap_us`, so the run sweeps
//!   from under- to over-capacity and back;
//! * seeded **burst windows** that multiply the instantaneous rate by
//!   [`WorkloadSpec::burst_factor`] — the flash-crowd overlay;
//! * a **per-tenant mix** drawn from [`WorkloadSpec::tenant_weights`];
//! * **hot-key skew**: batch vertices are drawn rank-wise from a Zipf
//!   distribution and mapped through a seeded rank→vertex permutation, so
//!   the hot set is a stable but arbitrary subset of the graph — exactly
//!   the access pattern embedding caches exploit;
//! * **template repeats**: with probability
//!   [`WorkloadSpec::repeat_fraction`] an arrival re-issues one of
//!   [`WorkloadSpec::templates`] pre-drawn batches verbatim, modeling the
//!   duplicate queries (same feed, same page) that make subgraph caches
//!   pay off.
//!
//! Everything derives from [`WorkloadSpec::seed`] via splitmix64 — no
//! wall clock, no global RNG — so the same spec over the same graph yields
//! the same `Vec<Arrival>` bytes on every machine and at every
//! `GT_THREADS` width. Batches never contain duplicate vertex ids: the
//! supervisor quarantines duplicate-id batches as malformed, and this
//! generator models load, not poison.

use gt_graph::VId;

/// Everything that defines an open-loop serving workload. Deterministic:
/// two equal specs generate identical arrival schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Seed every random choice derives from.
    pub seed: u64,
    /// Length of the generated window, virtual µs.
    pub duration_us: f64,
    /// Mean inter-arrival gap at the *baseline* rate, virtual µs; the
    /// diurnal curve and bursts modulate around `1/mean_gap_us`.
    pub mean_gap_us: f64,
    /// Diurnal modulation depth in `[0, 1)`: the rate swings between
    /// `(1-a)` and `(1+a)` times baseline over one period (= the window).
    pub diurnal_amplitude: f64,
    /// Number of seeded burst windows overlaid on the diurnal curve.
    pub bursts: usize,
    /// Length of each burst window, virtual µs.
    pub burst_len_us: f64,
    /// Rate multiplier inside a burst window.
    pub burst_factor: f64,
    /// Relative request share per tenant; the length fixes the tenant
    /// count. Need not sum to 1.
    pub tenant_weights: Vec<f64>,
    /// Zipf exponent of the vertex popularity ranking (larger = hotter
    /// hot set).
    pub zipf_exponent: f64,
    /// Probability an arrival re-issues a pre-drawn template batch
    /// verbatim instead of sampling a fresh one.
    pub repeat_fraction: f64,
    /// Number of template batches shared by repeat arrivals.
    pub templates: usize,
    /// Vertices per request batch.
    pub batch_size: usize,
}

impl WorkloadSpec {
    /// A compressed "day" of traffic: strong diurnal swing, a few flash
    /// crowds, three tenants with a 50/30/20 split, hot-key skew steep
    /// enough that a small cache covers most lookups.
    pub fn default_day(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            duration_us: 2_000_000.0,
            mean_gap_us: 10_000.0,
            diurnal_amplitude: 0.6,
            bursts: 3,
            burst_len_us: 100_000.0,
            burst_factor: 3.0,
            tenant_weights: vec![0.5, 0.3, 0.2],
            zipf_exponent: 1.2,
            repeat_fraction: 0.3,
            templates: 16,
            batch_size: 8,
        }
    }
}

/// One generated request: when it lands, who sent it, what it asks for.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Arrival time on the virtual clock, µs from window start.
    pub at_us: f64,
    /// Submitting tenant (index into [`WorkloadSpec::tenant_weights`]).
    pub tenant: usize,
    /// Requested seed vertices (unique, in `0..num_vertices`).
    pub batch: Vec<VId>,
}

/// Splitmix64: the same tiny deterministic generator the samplers use.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf-over-ranks sampler behind a seeded rank→vertex permutation.
struct SkewedVertices {
    /// `perm[rank]` = vertex id holding that popularity rank.
    perm: Vec<VId>,
    /// Cumulative (unnormalized) Zipf weights per rank.
    cumulative: Vec<f64>,
}

impl SkewedVertices {
    fn new(num_vertices: usize, exponent: f64, rng: &mut Rng) -> SkewedVertices {
        let mut perm: Vec<VId> = (0..num_vertices as VId).collect();
        // Fisher–Yates with the seeded stream: the hot set is stable for a
        // spec but not simply "the lowest vertex ids".
        for i in (1..perm.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut cumulative = Vec::with_capacity(num_vertices);
        let mut total = 0.0;
        for rank in 0..num_vertices {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        SkewedVertices { perm, cumulative }
    }

    fn sample(&self, rng: &mut Rng) -> VId {
        let total = *self.cumulative.last().expect("non-empty graph");
        let target = rng.next_f64() * total;
        let rank = self.cumulative.partition_point(|&c| c < target);
        self.perm[rank.min(self.perm.len() - 1)]
    }

    /// A batch of `size` *unique* vertices (duplicate ids would be
    /// quarantined as a malformed batch downstream).
    fn batch(&self, size: usize, rng: &mut Rng) -> Vec<VId> {
        let mut out: Vec<VId> = Vec::with_capacity(size);
        while out.len() < size {
            let v = self.sample(rng);
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }
}

/// Generate the arrival schedule for `spec` over a graph with
/// `num_vertices` vertices. Pure in `(spec, num_vertices)`.
pub fn generate(spec: &WorkloadSpec, num_vertices: usize) -> Vec<Arrival> {
    assert!(num_vertices > 0, "workload needs a non-empty graph");
    assert!(
        spec.batch_size <= num_vertices,
        "batch size {} exceeds graph size {num_vertices}",
        spec.batch_size
    );
    assert!(spec.mean_gap_us > 0.0 && spec.duration_us > 0.0);
    assert!((0.0..1.0).contains(&spec.diurnal_amplitude));
    assert!(!spec.tenant_weights.is_empty(), "need at least one tenant");

    let mut rng = Rng(spec.seed ^ 0x574B_4C44); // "WKLD"
    let skew = SkewedVertices::new(num_vertices, spec.zipf_exponent, &mut rng);

    // Template batches shared by repeat arrivals.
    let templates: Vec<Vec<VId>> = (0..spec.templates.max(1))
        .map(|_| skew.batch(spec.batch_size, &mut rng))
        .collect();

    // Seeded burst windows, anywhere in the run.
    let burst_windows: Vec<(f64, f64)> = (0..spec.bursts)
        .map(|_| {
            let start = rng.next_f64() * (spec.duration_us - spec.burst_len_us).max(0.0);
            (start, start + spec.burst_len_us)
        })
        .collect();

    let base_rate = 1.0 / spec.mean_gap_us;
    let rate_at = |t: f64| {
        // Trough at the window edges, peak mid-window.
        let phase = 2.0 * std::f64::consts::PI * t / spec.duration_us - std::f64::consts::FRAC_PI_2;
        let mut r = base_rate * (1.0 + spec.diurnal_amplitude * phase.sin());
        if burst_windows.iter().any(|&(a, b)| t >= a && t < b) {
            r *= spec.burst_factor;
        }
        r
    };
    let max_rate = base_rate * (1.0 + spec.diurnal_amplitude) * spec.burst_factor.max(1.0);

    let weight_total: f64 = spec.tenant_weights.iter().sum();
    let mut out = Vec::new();
    let mut t = 0.0f64;
    loop {
        // Thinning: candidate gaps at the envelope rate, accepted with
        // probability rate(t)/max_rate — an exact non-homogeneous Poisson
        // process, still a pure function of the seed.
        t += -rng.next_f64().max(f64::MIN_POSITIVE).ln() / max_rate;
        if t >= spec.duration_us {
            break;
        }
        if rng.next_f64() * max_rate > rate_at(t) {
            continue;
        }
        let mut pick = rng.next_f64() * weight_total;
        let mut tenant = 0;
        for (i, w) in spec.tenant_weights.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                tenant = i;
                break;
            }
        }
        let batch = if rng.next_f64() < spec.repeat_fraction {
            templates[(rng.next_u64() % templates.len() as u64) as usize].clone()
        } else {
            skew.batch(spec.batch_size, &mut rng)
        };
        out.push(Arrival {
            at_us: t,
            tenant,
            batch,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::default_day(42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec(), 300);
        let b = generate(&spec(), 300);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // A different seed yields a different schedule.
        let c = generate(&WorkloadSpec::default_day(43), 300);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_are_monotone_and_in_window() {
        let arrivals = generate(&spec(), 300);
        for w in arrivals.windows(2) {
            assert!(w[0].at_us <= w[1].at_us, "arrivals must be monotone");
        }
        for a in &arrivals {
            assert!(a.at_us >= 0.0 && a.at_us < spec().duration_us);
        }
    }

    #[test]
    fn batches_are_unique_and_in_range() {
        let s = spec();
        for a in generate(&s, 300) {
            assert_eq!(a.batch.len(), s.batch_size);
            let mut seen = a.batch.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), s.batch_size, "duplicate vertex in batch");
            assert!(a.batch.iter().all(|&v| (v as usize) < 300));
        }
    }

    #[test]
    fn vertex_popularity_is_skewed() {
        let arrivals = generate(&spec(), 300);
        let mut counts: HashMap<VId, usize> = HashMap::new();
        let mut total = 0usize;
        for a in &arrivals {
            for &v in &a.batch {
                *counts.entry(v).or_default() += 1;
                total += 1;
            }
        }
        let mut by_count: Vec<usize> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        // The hottest 10% of touched vertices carry most of the traffic.
        let hot: usize = by_count.iter().take(by_count.len().div_ceil(10)).sum();
        assert!(
            hot * 2 > total,
            "zipf skew too flat: hot 10% carried {hot}/{total}"
        );
    }

    #[test]
    fn template_repeats_produce_duplicate_batches() {
        let arrivals = generate(&spec(), 300);
        let mut batch_counts: HashMap<Vec<VId>, usize> = HashMap::new();
        for a in &arrivals {
            *batch_counts.entry(a.batch.clone()).or_default() += 1;
        }
        let repeats: usize = batch_counts.values().filter(|&&c| c > 1).sum();
        assert!(
            repeats * 5 >= arrivals.len(),
            "expected ~30% template repeats, saw {repeats}/{}",
            arrivals.len()
        );
    }

    #[test]
    fn tenant_mix_follows_weights() {
        let s = spec();
        let arrivals = generate(&s, 300);
        let mut per_tenant = vec![0usize; s.tenant_weights.len()];
        for a in &arrivals {
            per_tenant[a.tenant] += 1;
        }
        assert!(
            per_tenant.iter().all(|&c| c > 0),
            "every tenant must appear"
        );
        // 50/30/20 split: ordering must hold with generous slack.
        assert!(per_tenant[0] > per_tenant[1]);
        assert!(per_tenant[1] > per_tenant[2]);
    }

    #[test]
    fn diurnal_curve_concentrates_arrivals_mid_window() {
        let s = WorkloadSpec {
            bursts: 0,
            repeat_fraction: 0.0,
            ..spec()
        };
        let arrivals = generate(&s, 300);
        let tenth = s.duration_us / 10.0;
        let trough = arrivals.iter().filter(|a| a.at_us < tenth).count();
        let peak = arrivals
            .iter()
            .filter(|a| a.at_us >= 4.5 * tenth && a.at_us < 5.5 * tenth)
            .count();
        assert!(
            peak > trough * 2,
            "diurnal peak ({peak}) should dominate the trough ({trough})"
        );
    }
}
