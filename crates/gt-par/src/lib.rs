//! gt-par: a small deterministic chunked thread pool for host-side work.
//!
//! The paper's preprocessing pipeline (S/R/K/T, §II-B) and the DES scheduler
//! model host subtasks spread across cores; this crate is the real-thread
//! counterpart. It is deliberately tiny — zero external dependencies, like
//! gt-telemetry — and built around one idea: **work is split into chunks
//! whose geometry never depends on the thread count**, workers claim chunks
//! via an atomic cursor (self-scheduling), and results are combined in chunk
//! order. Each output element is produced by exactly one worker running
//! serial code over its chunk, so `GT_THREADS=N` is bit-identical to
//! `GT_THREADS=1` by construction — no reduction-order nondeterminism to
//! paper over. docs/parallelism.md describes the contract.
//!
//! Workers are persistent: a pool spawns `workers - 1` threads at
//! construction and broadcasts each parallel operation to them through a
//! condvar (the calling thread participates as worker 0). Preprocessing
//! issues several pool operations per batch over sub-millisecond regions;
//! spawning threads per operation costs more than the regions themselves,
//! parking on a condvar costs a wakeup (~µs).
//!
//! Telemetry: in parallel mode each worker that claims work opens a span on
//! its own `cpu-worker-{i}` track, so a Perfetto trace shows the real
//! overlap next to the DES-predicted schedule (Fig 13/14-style lanes).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Environment variable selecting the worker count for [`ThreadPool::global`].
pub const THREADS_ENV: &str = "GT_THREADS";

/// A fixed-width pool of self-scheduling workers. `workers - 1` persistent
/// threads park on a condvar between operations; the calling thread is
/// always worker 0. Closures may capture locals by reference: the caller
/// blocks until every worker has finished the operation, so borrows cannot
/// outlive it (the lifetime erasure this requires is contained in
/// [`ThreadPool::run_parallel`]).
///
/// Operations on one pool are serialized: a second thread calling into the
/// pool while an operation is in flight waits for it to finish. A worker
/// that re-enters the pool from inside an operation (nested parallelism)
/// runs its region inline instead of deadlocking.
#[derive(Debug)]
pub struct ThreadPool {
    workers: usize,
    /// Broadcast state; `None` for single-worker pools, which never spawn.
    shared: Option<Arc<Shared>>,
    /// Serializes whole operations (publish → work → drain).
    op_lock: Mutex<()>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Split `total` items into chunks of `chunk` items; the tail chunk may be
/// short. Chunk geometry is a pure function of (total, chunk) — never of the
/// worker count — which is what makes chunk-order combination deterministic.
pub fn num_chunks(total: usize, chunk: usize) -> usize {
    total.div_ceil(chunk.max(1))
}

/// The item range of chunk `i`.
pub fn chunk_range(total: usize, chunk: usize, i: usize) -> Range<usize> {
    let chunk = chunk.max(1);
    let lo = i * chunk;
    (lo.min(total))..((lo + chunk).min(total))
}

/// One broadcast round's task: the pool-side loop bound to a specific
/// operation's cursor and closure, called with the worker index.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}
// Safety: the pointee is Sync, and the publishing caller keeps it alive
// until every worker has drained (run_parallel blocks on `active == 0`).
unsafe impl Send for Job {}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new round.
    work_cv: Condvar,
    /// The caller waits here for `active` to drain to zero.
    done_cv: Condvar,
}

struct PoolState {
    /// Round number; bumped per publish so sleepy workers can tell a new
    /// job from the one they just finished.
    seq: u64,
    job: Option<Job>,
    /// Spawned workers still running the current round.
    active: usize,
    shutdown: bool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

std::thread_local! {
    /// Set while this thread executes a pool job; a nested pool call from
    /// such a thread runs inline (serial) instead of publishing a round it
    /// would then deadlock waiting on.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

impl ThreadPool {
    /// A pool with exactly `workers` workers (clamped to at least 1);
    /// spawns `workers - 1` persistent threads.
    pub fn new(workers: usize) -> ThreadPool {
        let workers = workers.max(1);
        if workers == 1 {
            return ThreadPool {
                workers,
                shared: None,
                op_lock: Mutex::new(()),
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                seq: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gt-par-{w}"))
                    .spawn(move || worker_thread(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            workers,
            shared: Some(shared),
            op_lock: Mutex::new(()),
            handles,
        }
    }

    /// The process-wide pool: `GT_THREADS` if set (0 or unparsable falls
    /// back), else the machine's available parallelism.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(threads_from_env()))
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A pool with a `'static` lifetime (leaked allocation). Kernels hold
    /// `&'static ThreadPool` so determinism tests can pin explicit widths;
    /// this is the constructor those tests use. The pool's worker threads
    /// stay parked for the life of the process.
    pub fn leaked(workers: usize) -> &'static ThreadPool {
        Box::leak(Box::new(ThreadPool::new(workers)))
    }

    /// Run `f(chunk_index, item_range)` for every chunk of `0..total`.
    /// Workers claim chunk indices from an atomic cursor; with one worker
    /// (or one chunk) the loop runs inline on the calling thread. `f` must
    /// not assume any relationship between chunk index and worker identity.
    pub fn for_each_chunk<F>(&self, label: &'static str, total: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let n = num_chunks(total, chunk);
        if n == 0 {
            return;
        }
        if self.workers == 1 || n == 1 || IN_POOL_JOB.with(|c| c.get()) {
            let _span = gt_telemetry::global().span("cpu-worker-0", label);
            for i in 0..n {
                f(i, chunk_range(total, chunk, i));
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        self.run_parallel(&|w| worker_loop(w, label, &cursor, n, total, chunk, &f));
    }

    /// Broadcast `task` to every worker (index 1..workers on the spawned
    /// threads, 0 on the calling thread) and block until all have returned.
    fn run_parallel(&self, task: &(dyn Fn(usize) + Sync)) {
        let _op = self.op_lock.lock().unwrap();
        let shared = self.shared.as_ref().expect("multi-worker pool");
        // Safety: we block below until every worker finished the round, so
        // the erased borrow strictly outlives all uses.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    task,
                )
            },
        };
        {
            let mut st = shared.state.lock().unwrap();
            debug_assert!(st.job.is_none() && st.active == 0, "round already active");
            st.job = Some(job);
            st.active = self.handles.len();
            st.seq += 1;
            shared.work_cv.notify_all();
        }
        IN_POOL_JOB.with(|c| c.set(true));
        task(0);
        IN_POOL_JOB.with(|c| c.set(false));
        let mut st = shared.state.lock().unwrap();
        while st.active > 0 {
            st = shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
    }

    /// Map every chunk of `0..total` through `f` and return the results in
    /// **chunk order** (not completion order) — the deterministic reduction
    /// point for parallel producers.
    pub fn map_chunks<T, F>(&self, label: &'static str, total: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, Range<usize>) -> T + Sync,
    {
        let n = num_chunks(total, chunk);
        let slots = SlotVec::new(n);
        self.for_each_chunk(label, total, chunk, |i, range| {
            // Safety: `for_each_chunk` hands out each chunk index exactly
            // once, so slot `i` has a unique writer.
            unsafe { slots.write(i, f(i, range)) };
        });
        slots.into_vec()
    }

    /// Run `f(chunk_index, chunk_slice)` over `data.chunks_mut(chunk)`, in
    /// parallel. Chunk `i` covers `data[i*chunk .. (i+1)*chunk]`; slices are
    /// disjoint, so each element has a unique writer.
    pub fn for_each_chunk_mut<T, F>(&self, label: &'static str, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let total = data.len();
        let base = SendPtr(data.as_mut_ptr());
        self.for_each_chunk(label, total, chunk, |i, range| {
            // Safety: ranges from `chunk_range` are disjoint across chunk
            // indices and each index is claimed exactly once, so this
            // reconstructs non-overlapping subslices of `data`.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
            f(i, slice);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.state.lock().unwrap().shutdown = true;
            shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A spawned worker's park-run loop: wait for a round it hasn't run yet,
/// run it, report drained, repeat until shutdown.
fn worker_thread(w: usize, shared: &Shared) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    last_seq = st.seq;
                    break st.job.expect("published round has a job");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        IN_POOL_JOB.with(|c| c.set(true));
        // Safety: the publisher blocks until `active` drains, keeping the
        // closure alive for the duration of this call.
        unsafe { (*job.f)(w) };
        IN_POOL_JOB.with(|c| c.set(false));
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// One worker's claim loop, wrapped in a per-worker telemetry span so a
/// Perfetto trace shows real core occupancy on `cpu-worker-{w}` tracks.
/// Workers that arrive after the cursor is exhausted emit nothing.
fn worker_loop<F>(
    w: usize,
    label: &'static str,
    cursor: &AtomicUsize,
    n: usize,
    total: usize,
    chunk: usize,
    f: &F,
) where
    F: Fn(usize, Range<usize>) + Sync,
{
    let mut i = cursor.fetch_add(1, Ordering::Relaxed);
    if i >= n {
        return;
    }
    let telemetry = gt_telemetry::global();
    let span = telemetry.span(format!("cpu-worker-{w}"), label);
    let mut claimed = 0u64;
    while i < n {
        claimed += 1;
        f(i, chunk_range(total, chunk, i));
        i = cursor.fetch_add(1, Ordering::Relaxed);
    }
    drop(span);
    telemetry
        .counter(
            "gt_par_chunks_claimed_total",
            "chunks claimed by pool workers",
        )
        .add(claimed);
}

/// Worker count from `GT_THREADS`, defaulting to available parallelism.
fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// `Vec<Option<T>>` with interior mutability for unique-index writes.
struct SlotVec<T> {
    slots: std::cell::UnsafeCell<Vec<Option<T>>>,
}

// Safety: writes go to distinct indices (enforced by the chunk cursor) and
// reads happen only after all writers joined.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    fn new(n: usize) -> SlotVec<T> {
        SlotVec {
            slots: std::cell::UnsafeCell::new((0..n).map(|_| None).collect()),
        }
    }

    /// Safety: each index must have exactly one writer, and no concurrent
    /// reader.
    unsafe fn write(&self, i: usize, value: T) {
        let slots: &mut Vec<Option<T>> = &mut *self.slots.get();
        slots[i] = Some(value);
    }

    fn into_vec(self) -> Vec<T> {
        self.slots
            .into_inner()
            .into_iter()
            .map(|s| s.expect("every chunk produced a result"))
            .collect()
    }
}

/// A raw pointer that may cross thread boundaries (the disjointness argument
/// lives at the use site).
struct SendPtr<T>(*mut T);
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Accessor (not field access) so closures capture the whole `SendPtr`,
    // which is Sync — edition-2021 disjoint capture would otherwise grab
    // the raw pointer field itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_geometry_is_exact() {
        assert_eq!(num_chunks(10, 4), 3);
        assert_eq!(chunk_range(10, 4, 0), 0..4);
        assert_eq!(chunk_range(10, 4, 2), 8..10);
        assert_eq!(num_chunks(0, 4), 0);
        assert_eq!(num_chunks(4, 0), 4); // chunk clamps to 1
    }

    #[test]
    fn map_chunks_returns_chunk_order() {
        for workers in [1, 2, 8] {
            let pool = ThreadPool::new(workers);
            let out = pool.map_chunks("test", 100, 7, |i, range| (i, range.start, range.end));
            assert_eq!(out.len(), num_chunks(100, 7));
            for (i, &(ci, lo, hi)) in out.iter().enumerate() {
                assert_eq!(ci, i);
                assert_eq!(lo..hi, chunk_range(100, 7, i));
            }
        }
    }

    #[test]
    fn for_each_chunk_mut_writes_every_element_once() {
        for workers in [1, 3, 8] {
            let pool = ThreadPool::new(workers);
            let mut data = vec![0u32; 1000];
            pool.for_each_chunk_mut("test", &mut data, 13, |_, chunk| {
                for x in chunk {
                    *x += 1;
                }
            });
            assert!(data.iter().all(|&x| x == 1));
        }
    }

    #[test]
    fn results_identical_across_worker_counts() {
        // The determinism contract: same chunk size, any worker count,
        // bitwise-equal output.
        let compute = |pool: &ThreadPool| {
            pool.map_chunks("test", 997, 64, |i, range| {
                range
                    .map(|x| (x as u64).wrapping_mul(i as u64 + 1))
                    .sum::<u64>()
            })
        };
        let serial = compute(&ThreadPool::new(1));
        for workers in [2, 4, 8] {
            assert_eq!(serial, compute(&ThreadPool::new(workers)));
        }
    }

    #[test]
    fn pool_survives_many_consecutive_operations() {
        // Persistent workers must drain and re-arm cleanly round after round.
        let pool = ThreadPool::new(4);
        for round in 0..200usize {
            let sum: u64 = pool
                .map_chunks("test", 64, 8, |i, range| (i + range.start + round) as u64)
                .into_iter()
                .sum();
            assert!(sum > 0);
        }
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let pool = ThreadPool::leaked(4);
        let mut data = vec![0u64; 256];
        pool.for_each_chunk_mut("outer", &mut data, 32, |_, chunk| {
            // A worker re-entering the pool runs this region serially.
            let inner = pool.map_chunks("inner", chunk.len(), 8, |_, r| r.len() as u64);
            let total: u64 = inner.into_iter().sum();
            for x in chunk.iter_mut() {
                *x = total;
            }
        });
        assert!(data.iter().all(|&x| x == 32));
    }

    #[test]
    fn concurrent_callers_are_serialized() {
        let pool = ThreadPool::leaked(3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let out = pool.map_chunks("test", 40, 4, |i, _| i);
                        assert_eq!(out, (0..10).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn global_pool_has_at_least_one_worker() {
        assert!(ThreadPool::global().workers() >= 1);
    }

    #[test]
    fn empty_input_is_a_noop() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.for_each_chunk("test", 0, 8, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        let out: Vec<usize> = pool.map_chunks("test", 0, 8, |i, _| i);
        assert!(out.is_empty());
    }
}
