//! Property-based tests on the graph substrate's invariants.

use gt_graph::convert::{coo_to_csc, coo_to_csr, csc_to_csr, csr_to_coo, csr_to_csc};
use gt_graph::{Coo, DegreeStats, EmbeddingTable, VId};
use proptest::prelude::*;

/// Arbitrary edge list over a small vertex id space.
fn edges(max_v: VId, max_e: usize) -> impl Strategy<Value = Vec<(VId, VId)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

proptest! {
    /// COO → CSR → COO preserves the edge multiset.
    #[test]
    fn csr_roundtrip_preserves_edges(es in edges(40, 200)) {
        let coo = Coo::from_edges(40, &es);
        let (csr, _) = coo_to_csr(&coo);
        let (back, _) = csr_to_coo(&csr);
        let mut a: Vec<_> = coo.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// CSR and CSC derived from the same COO describe the same edges.
    #[test]
    fn csr_csc_agree(es in edges(30, 150)) {
        let coo = Coo::from_edges(30, &es);
        let (csr, _) = coo_to_csr(&coo);
        let (csc, _) = coo_to_csc(&coo);
        prop_assert_eq!(csr.num_edges(), csc.num_edges());
        let mut from_csr: Vec<(VId, VId)> = Vec::new();
        for (d, ss) in csr.iter() {
            for &s in ss {
                from_csr.push((s, d));
            }
        }
        let mut from_csc: Vec<(VId, VId)> = Vec::new();
        for (s, ds) in csc.iter() {
            for &d in ds {
                from_csc.push((s, d));
            }
        }
        from_csr.sort();
        from_csc.sort();
        prop_assert_eq!(from_csr, from_csc);
    }

    /// Transposing twice preserves the edge multiset and per-dst slices
    /// (order within a slice may differ — both sorts are stable but see
    /// different intermediate orders).
    #[test]
    fn double_transpose_identity(es in edges(25, 120)) {
        let coo = Coo::from_edges(25, &es);
        let (csr, _) = coo_to_csr(&coo);
        let (csc, _) = csr_to_csc(&csr);
        let (back, _) = csc_to_csr(&csc);
        prop_assert_eq!(&back.indptr, &csr.indptr);
        for d in 0..csr.num_vertices() as VId {
            let mut a = csr.srcs(d).to_vec();
            let mut b = back.srcs(d).to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "dst {} slice mismatch", d);
        }
    }

    /// dedup is idempotent and removes exactly duplicates/self-loops.
    #[test]
    fn dedup_idempotent(es in edges(20, 100)) {
        let once = Coo::from_edges(20, &es).dedup();
        let twice = once.clone().dedup();
        prop_assert_eq!(&once, &twice);
        let set: std::collections::HashSet<_> = once.edges().collect();
        prop_assert_eq!(set.len(), once.num_edges());
        prop_assert!(once.edges().all(|(s, d)| s != d));
    }

    /// Degree statistics: the CDF is monotone, ends at 1, and the histogram
    /// accounts for every vertex.
    #[test]
    fn degree_cdf_invariants(es in edges(30, 200)) {
        let coo = Coo::from_edges(30, &es);
        let (csr, _) = coo_to_csr(&coo);
        let s = DegreeStats::of_csr(&csr);
        prop_assert_eq!(s.hist.iter().sum::<u64>(), 30);
        let cdf = s.cdf();
        prop_assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        if let Some(last) = cdf.last() {
            prop_assert!((last.1 - 1.0).abs() < 1e-9);
        }
        // Mean equals edges / vertices.
        prop_assert!((s.mean - csr.num_edges() as f64 / 30.0).abs() < 1e-9);
    }

    /// Gather semantics: row i of the gather equals row ids[i] of the table.
    #[test]
    fn gather_is_row_selection(
        ids in prop::collection::vec(0u32..20, 0..50),
        seed in 0u64..1000,
    ) {
        let table = EmbeddingTable::random(20, 8, seed);
        let g = table.gather(&ids);
        prop_assert_eq!(g.rows(), ids.len());
        for (i, &v) in ids.iter().enumerate() {
            prop_assert_eq!(g.row(i as u32), table.row(v));
        }
    }

    /// Symmetrize yields a graph containing both directions of every edge.
    #[test]
    fn symmetrize_is_symmetric(es in edges(15, 60)) {
        let g = Coo::from_edges(15, &es).symmetrize();
        let set: std::collections::HashSet<_> = g.edges().collect();
        for &(s, d) in &set {
            prop_assert!(set.contains(&(d, s)), "missing reverse of {}->{}", s, d);
        }
    }
}
