//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's OGB/GraphSAINT/SNAP datasets (DESIGN.md §2).
//! Each generator is deterministic given its seed. Four families cover the
//! Table-II workloads' structure:
//!
//! * [`rmat`] — power-law web/social graphs (products, citation2, papers,
//!   reddit2, livejournal, wiki-talk, google);
//! * [`power_law`] — configuration-model graphs with an explicit exponent;
//! * [`grid2d`] — near-planar constant-degree road networks (roadnet-ca);
//! * [`bipartite`] — user–item interaction graphs (amazon, gowalla).
//! * [`erdos_renyi`] — uniform random baseline used by tests.
//! * [`planted_partition`] — homophilous block graphs for learnability tests.

use crate::{Coo, VId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Recursive-matrix (R-MAT) generator with the canonical (a,b,c,d) =
/// (0.57, 0.19, 0.19, 0.05) partition probabilities, yielding a power-law
/// degree distribution like real web/social graphs.
pub fn rmat(num_vertices: usize, num_edges: usize, seed: u64) -> Coo {
    rmat_with(num_vertices, num_edges, 0.57, 0.19, 0.19, seed)
}

/// R-MAT with explicit quadrant probabilities (d = 1 - a - b - c).
pub fn rmat_with(num_vertices: usize, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Coo {
    assert!(num_vertices > 1);
    assert!(a + b + c < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    let scale = (num_vertices as f64).log2().ceil() as u32;
    let side = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = Vec::with_capacity(num_edges);
    let mut dst = Vec::with_capacity(num_edges);
    while src.len() < num_edges {
        let (mut x, mut y) = (0usize, 0usize);
        let mut half = side / 2;
        while half > 0 {
            let r: f64 = rng.gen();
            if r < a {
                // top-left: nothing to add
            } else if r < a + b {
                y += half;
            } else if r < a + b + c {
                x += half;
            } else {
                x += half;
                y += half;
            }
            half /= 2;
        }
        if x < num_vertices && y < num_vertices && x != y {
            src.push(x as VId);
            dst.push(y as VId);
        }
    }
    Coo::new(num_vertices, src, dst).dedup()
}

/// Configuration-model graph whose out-degrees follow a Zipf distribution
/// with the given exponent; endpoints are matched uniformly.
pub fn power_law(num_vertices: usize, target_edges: usize, exponent: f64, seed: u64) -> Coo {
    assert!(num_vertices > 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(num_vertices as u64, exponent).expect("valid zipf parameters");
    let mut src = Vec::with_capacity(target_edges);
    let mut dst = Vec::with_capacity(target_edges);
    while src.len() < target_edges {
        // Zipf yields ranks in 1..=n; rank 1 is the hottest vertex.
        let s = zipf.sample(&mut rng) as u64 - 1;
        let d = rng.gen_range(0..num_vertices as u64);
        if s != d {
            src.push(s as VId);
            dst.push(d as VId);
        }
    }
    Coo::new(num_vertices, src, dst).dedup()
}

/// 2-D grid with 4-neighborhood edges, modeling road networks: bounded
/// degree, enormous diameter, no hubs (roadnet-ca in Table II).
pub fn grid2d(width: usize, height: usize) -> Coo {
    let n = width * height;
    let at = |x: usize, y: usize| (y * width + x) as VId;
    let mut edges = Vec::with_capacity(4 * n);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                edges.push((at(x, y), at(x + 1, y)));
                edges.push((at(x + 1, y), at(x, y)));
            }
            if y + 1 < height {
                edges.push((at(x, y), at(x, y + 1)));
                edges.push((at(x, y + 1), at(x, y)));
            }
        }
    }
    Coo::from_edges(n, &edges)
}

/// Bipartite user–item graph: `users` vertices [0, users) connect to `items`
/// vertices [users, users+items) with Zipf-distributed item popularity —
/// the recommendation workloads (amazon, gowalla) NGCF targets.
pub fn bipartite(users: usize, items: usize, num_edges: usize, seed: u64) -> Coo {
    assert!(users > 0 && items > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(items as u64, 1.1).expect("valid zipf parameters");
    let mut src = Vec::with_capacity(num_edges);
    let mut dst = Vec::with_capacity(num_edges);
    while src.len() < num_edges {
        let u = rng.gen_range(0..users as u64) as VId;
        let i = users as VId + (zipf.sample(&mut rng) as VId - 1);
        src.push(u);
        dst.push(i);
    }
    Coo::new(users + items, src, dst).dedup().symmetrize()
}

/// Planted-partition (stochastic-block) graph with `num_classes` blocks laid
/// out round-robin (vertex `v` belongs to block `v % num_classes`). Each edge
/// picks a uniform destination; with probability `intra` the source is drawn
/// from the destination's own block, otherwise uniformly. High `intra` gives
/// the homophily that message-passing GNNs rely on — neighbors of a vertex
/// mostly share its label, so mean aggregation concentrates the class signal
/// instead of washing it out (unlike [`erdos_renyi`], whose neighborhoods are
/// label-uncorrelated).
pub fn planted_partition(
    num_vertices: usize,
    num_edges: usize,
    num_classes: usize,
    intra: f64,
    seed: u64,
) -> Coo {
    assert!(num_vertices > 1);
    assert!(num_classes > 0 && num_classes <= num_vertices);
    assert!((0.0..=1.0).contains(&intra));
    let mut rng = StdRng::seed_from_u64(seed);
    let stride = num_classes;
    let mut src = Vec::with_capacity(num_edges);
    let mut dst = Vec::with_capacity(num_edges);
    while src.len() < num_edges {
        let d = rng.gen_range(0..num_vertices);
        let s = if rng.gen_bool(intra) {
            // Same block as d: vertices {base, base+stride, base+2*stride, ...}.
            let base = d % stride;
            let k = rng.gen_range(0..(num_vertices - base).div_ceil(stride));
            base + k * stride
        } else {
            rng.gen_range(0..num_vertices)
        };
        if s != d {
            src.push(s as VId);
            dst.push(d as VId);
        }
    }
    Coo::new(num_vertices, src, dst).dedup()
}

/// Erdős–Rényi G(n, m) with distinct uniform random edges.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> Coo {
    assert!(num_vertices > 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = Vec::with_capacity(num_edges);
    let mut dst = Vec::with_capacity(num_edges);
    while src.len() < num_edges {
        let s = rng.gen_range(0..num_vertices as VId);
        let d = rng.gen_range(0..num_vertices as VId);
        if s != d {
            src.push(s);
            dst.push(d);
        }
    }
    Coo::new(num_vertices, src, dst).dedup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::degree::DegreeStats;

    #[test]
    fn rmat_is_deterministic() {
        let a = rmat(256, 1000, 7);
        let b = rmat(256, 1000, 7);
        assert_eq!(a, b);
        assert_ne!(a, rmat(256, 1000, 8));
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(1024, 8000, 1);
        let (csr, _) = coo_to_csr(&g);
        let s = DegreeStats::of_csr(&csr);
        // Power-law graphs have std dev well above the mean.
        assert!(s.std_dev > s.mean, "std={} mean={}", s.std_dev, s.mean);
        assert!(s.max > 10 * s.mean as usize);
    }

    #[test]
    fn grid_degrees_are_bounded() {
        let g = grid2d(10, 10);
        assert_eq!(g.num_vertices(), 100);
        let (csr, _) = coo_to_csr(&g);
        let s = DegreeStats::of_csr(&csr);
        assert_eq!(s.max, 4);
        assert!(s.mean >= 2.0 && s.mean <= 4.0);
        assert!(s.std_dev < 1.0);
    }

    #[test]
    fn bipartite_edges_cross_parts() {
        let g = bipartite(50, 20, 300, 3);
        for (s, d) in g.edges() {
            let su = (s as usize) < 50;
            let du = (d as usize) < 50;
            assert_ne!(su, du, "edge within one part: {s}->{d}");
        }
    }

    #[test]
    fn erdos_renyi_has_no_self_loops_or_dupes() {
        let g = erdos_renyi(100, 500, 5);
        assert_eq!(g.num_edges(), {
            let set: std::collections::HashSet<_> = g.edges().collect();
            set.len()
        });
        assert!(g.edges().all(|(s, d)| s != d));
    }

    #[test]
    fn planted_partition_is_homophilous_and_deterministic() {
        let g = planted_partition(400, 4000, 4, 0.9, 11);
        assert_eq!(g, planted_partition(400, 4000, 4, 0.9, 11));
        assert!(g.edges().all(|(s, d)| s != d));
        let intra = g
            .edges()
            .filter(|(s, d)| (*s as usize) % 4 == (*d as usize) % 4)
            .count();
        // With intra=0.9 and a 1/4 chance the uniform branch also lands
        // intra-class, well over 80% of edges stay within a block.
        assert!(
            intra * 10 > g.num_edges() * 8,
            "intra {} of {}",
            intra,
            g.num_edges()
        );
    }

    #[test]
    fn power_law_hits_target_before_dedup() {
        let g = power_law(500, 2000, 1.2, 9);
        // dedup may trim a little, but the bulk should remain
        assert!(g.num_edges() > 1000, "edges={}", g.num_edges());
    }
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportionally to their current degree.
/// Produces the scale-free structure of citation networks.
pub fn barabasi_albert(num_vertices: usize, m: usize, seed: u64) -> Coo {
    assert!(num_vertices > m && m > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-endpoint list: sampling a uniform element of `endpoints`
    // is degree-proportional sampling.
    let mut endpoints: Vec<VId> = Vec::with_capacity(2 * num_vertices * m);
    let mut edges: Vec<(VId, VId)> = Vec::with_capacity(num_vertices * m);
    // Seed clique over the first m+1 vertices.
    for i in 0..=m as VId {
        for j in 0..i {
            edges.push((i, j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m as VId + 1)..num_vertices as VId {
        let mut chosen: Vec<VId> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Coo::from_edges(num_vertices, &edges).dedup()
}

/// Watts–Strogatz small world: a ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`. High clustering, short paths.
pub fn watts_strogatz(num_vertices: usize, k: usize, beta: f64, seed: u64) -> Coo {
    assert!(num_vertices > 2 * k && k > 0);
    assert!((0.0..=1.0).contains(&beta));
    let n = num_vertices as VId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VId, VId)> = Vec::with_capacity(num_vertices * k);
    for v in 0..n {
        for j in 1..=k as VId {
            let mut target = (v + j) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target.
                loop {
                    target = rng.gen_range(0..n);
                    if target != v {
                        break;
                    }
                }
            }
            edges.push((v, target));
        }
    }
    Coo::from_edges(num_vertices, &edges).dedup().symmetrize()
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::degree::DegreeStats;

    #[test]
    fn barabasi_albert_is_scale_free_ish() {
        let g = barabasi_albert(2000, 3, 5);
        let (csr, _) = coo_to_csr(&g.clone().symmetrize());
        let s = DegreeStats::of_csr(&csr);
        // Preferential attachment yields hubs: max degree far above mean.
        assert!(s.max as f64 > 8.0 * s.mean, "max {} mean {}", s.max, s.mean);
        assert!(g.num_edges() >= 2000 * 2);
    }

    #[test]
    fn watts_strogatz_keeps_even_degree() {
        let g = watts_strogatz(500, 3, 0.1, 7);
        let (csr, _) = coo_to_csr(&g);
        let s = DegreeStats::of_csr(&csr);
        // Mostly lattice: degrees cluster near 2k = 6.
        assert!(s.mean > 4.0 && s.mean < 8.0, "mean {}", s.mean);
        assert!(s.std_dev < 2.5, "std {}", s.std_dev);
    }

    #[test]
    fn extra_generators_are_deterministic() {
        assert_eq!(barabasi_albert(300, 2, 9), barabasi_albert(300, 2, 9));
        assert_eq!(
            watts_strogatz(300, 2, 0.2, 9),
            watts_strogatz(300, 2, 0.2, 9)
        );
    }
}
