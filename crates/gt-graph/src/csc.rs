//! Compressed sparse column, paper orientation: pointer array indexed by
//! **source** vertex, vertex array stores **destination** ids (§II-A).
//! Backward propagation traverses this ("dst node information per src node").

use crate::error::{validate_indptr, GraphError};
use crate::{EId, VId};

/// Src-indexed adjacency: `dsts(s)` are the out-neighbors of source `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csc {
    /// `indptr[s]..indptr[s+1]` bounds src `s`'s slice of `dsts`.
    pub indptr: Vec<EId>,
    /// Concatenated destination ids.
    pub dsts: Vec<VId>,
}

impl Csc {
    /// Construct from raw arrays, validating monotonicity and bounds.
    /// Panics on invalid input; use [`try_new`](Self::try_new) to get the
    /// violation as a value.
    pub fn new(indptr: Vec<EId>, dsts: Vec<VId>) -> Self {
        Csc::try_new(indptr, dsts).unwrap_or_else(|e| panic!("invalid CSC: {e}"))
    }

    /// Construct from raw arrays, returning the structural-invariant
    /// violation instead of panicking.
    pub fn try_new(indptr: Vec<EId>, dsts: Vec<VId>) -> Result<Self, GraphError> {
        validate_indptr(&indptr, dsts.len())?;
        Ok(Csc { indptr, dsts })
    }

    /// Number of source vertices.
    pub fn num_vertices(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    /// Out-neighbors (destinations) of source `s`.
    pub fn dsts(&self, s: VId) -> &[VId] {
        let lo = self.indptr[s as usize] as usize;
        let hi = self.indptr[s as usize + 1] as usize;
        &self.dsts[lo..hi]
    }

    /// Out-degree of source `s`.
    pub fn degree(&self, s: VId) -> usize {
        (self.indptr[s as usize + 1] - self.indptr[s as usize]) as usize
    }

    /// Iterate `(src, &[dsts])` over all sources.
    pub fn iter(&self) -> impl Iterator<Item = (VId, &[VId])> + '_ {
        (0..self.num_vertices() as VId).map(move |s| (s, self.dsts(s)))
    }

    /// Storage footprint in bytes.
    pub fn storage_bytes(&self) -> u64 {
        (self.indptr.len() * std::mem::size_of::<EId>()
            + self.dsts.len() * std::mem::size_of::<VId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Csc {
        // Edges 0→1, 1→2, 2→1, 3→1, 3→2, src-indexed.
        Csc::new(vec![0, 1, 2, 3, 5], vec![1, 2, 1, 1, 2])
    }

    #[test]
    fn out_neighbor_slices() {
        let g = fig1();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.dsts(0), &[1]);
        assert_eq!(g.dsts(3), &[1, 2]);
        assert_eq!(g.degree(3), 2);
    }

    #[test]
    #[should_panic]
    fn nonzero_start_rejected() {
        Csc::new(vec![1, 2], vec![0]);
    }

    #[test]
    fn try_new_reports_violations_as_values() {
        assert_eq!(
            Csc::try_new(vec![1, 2], vec![0]),
            Err(GraphError::IndptrStart { first: 1 })
        );
        assert_eq!(Csc::try_new(vec![], vec![]), Err(GraphError::EmptyIndptr));
        assert!(Csc::try_new(vec![0, 1, 2, 3, 5], vec![1, 2, 1, 1, 2]).is_ok());
    }

    #[test]
    fn iter_degrees() {
        let g = fig1();
        let d: Vec<usize> = g.iter().map(|(_, x)| x.len()).collect();
        assert_eq!(d, vec![1, 1, 1, 2]);
    }
}
