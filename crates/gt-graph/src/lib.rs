//! Graph substrate for GraphTensor-RS.
//!
//! Implements the three storage formats of Fig 1 with the *paper's*
//! orientation conventions (§II-A):
//!
//! * [`Coo`] — edge-centric pairs of (src, dst) vertex ids;
//! * [`Csr`] — vertex-centric, **dst-indexed**: for each destination vertex,
//!   the contiguous list of its source neighbors (what forward aggregation
//!   traverses);
//! * [`Csc`] — vertex-centric, **src-indexed**: for each source vertex, the
//!   list of its destinations (what backward propagation traverses).
//!
//! Conversions between formats report their work as [`gt_sim::KernelStats`]
//! so the baselines can charge the GPU format-translation overhead that
//! dominates DGL's light-feature runs (§VI-A, Fig 16a).
//!
//! The crate also provides dense per-vertex [`EmbeddingTable`]s (Fig 1c),
//! degree statistics (Fig 8), and seeded synthetic generators standing in for
//! the paper's OGB/SNAP datasets (DESIGN.md §2).

pub mod convert;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod degree;
pub mod embedding;
pub mod error;
pub mod generators;
pub mod io;

pub use convert::{coo_to_csc, coo_to_csr, csr_to_coo, csr_to_csc};
pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use degree::DegreeStats;
pub use embedding::EmbeddingTable;
pub use error::GraphError;

/// Vertex identifier. `u32` bounds graphs at ~4.3B vertices, matching the
/// paper's largest dataset (papers, 111M vertices) with headroom while
/// halving index memory versus `usize` (see the perf-book guidance on
/// smaller integers).
pub type VId = u32;

/// Edge identifier.
pub type EId = u32;
