//! Degree statistics and CDFs (Fig 8).
//!
//! §IV-B motivates feature-wise scheduling with two observations about
//! *sampled* graphs versus their originals: the average degree is ~3.4×
//! smaller, and the degree distribution is nearly uniform (bounded fanout).
//! [`DegreeStats`] computes the mean, standard deviation, and CDF needed to
//! regenerate Figs 8a–8c.

use crate::{Csr, VId};

/// Summary statistics over per-vertex (in-)degrees.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Per-vertex degree histogram: `hist[k]` = number of vertices with
    /// degree `k`.
    pub hist: Vec<u64>,
    /// Arithmetic mean degree.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Maximum degree observed.
    pub max: usize,
    /// Number of vertices considered.
    pub num_vertices: usize,
}

impl DegreeStats {
    /// Statistics over an explicit degree sequence.
    pub fn from_degrees(degrees: impl Iterator<Item = usize>) -> Self {
        let mut hist: Vec<u64> = Vec::new();
        let mut n = 0usize;
        let mut sum = 0f64;
        let mut sumsq = 0f64;
        let mut max = 0usize;
        for d in degrees {
            if d >= hist.len() {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
            n += 1;
            sum += d as f64;
            sumsq += (d * d) as f64;
            max = max.max(d);
        }
        let mean = if n == 0 { 0.0 } else { sum / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            (sumsq / n as f64 - mean * mean).max(0.0)
        };
        DegreeStats {
            hist,
            mean,
            std_dev: var.sqrt(),
            max,
            num_vertices: n,
        }
    }

    /// In-degree statistics of a dst-indexed CSR.
    pub fn of_csr(csr: &Csr) -> Self {
        Self::from_degrees((0..csr.num_vertices() as VId).map(|d| csr.degree(d)))
    }

    /// In-degree statistics excluding isolated (degree-0) vertices — sampled
    /// subgraphs renumber only touched vertices, so comparisons against
    /// originals should skip padding zeros.
    pub fn of_csr_nonisolated(csr: &Csr) -> Self {
        Self::from_degrees(
            (0..csr.num_vertices() as VId)
                .map(|d| csr.degree(d))
                .filter(|&d| d > 0),
        )
    }

    /// CDF value P(degree ≤ k).
    pub fn cdf_at(&self, k: usize) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        let cum: u64 = self.hist.iter().take(k + 1).sum();
        cum as f64 / self.num_vertices as f64
    }

    /// CDF points `(degree, P(deg ≤ degree))` for every occupied degree.
    pub fn cdf(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (k, &c) in self.hist.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((k, cum as f64 / self.num_vertices as f64));
            }
        }
        out
    }

    /// Smallest degree k with P(deg ≤ k) ≥ q.
    pub fn quantile(&self, q: f64) -> usize {
        let target = (q * self.num_vertices as f64).ceil() as u64;
        let mut cum = 0u64;
        for (k, &c) in self.hist.iter().enumerate() {
            cum += c;
            if cum >= target {
                return k;
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::coo_to_csr;
    use crate::Coo;

    #[test]
    fn mean_and_std() {
        let s = DegreeStats::from_degrees([2, 2, 2, 2].into_iter());
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std_dev, 0.0);
        let skew = DegreeStats::from_degrees([0, 0, 0, 8].into_iter());
        assert_eq!(skew.mean, 2.0);
        assert!(skew.std_dev > 3.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let s = DegreeStats::from_degrees([1, 2, 2, 5].into_iter());
        let cdf = s.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((s.cdf_at(2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let s = DegreeStats::from_degrees([1, 2, 3, 4].into_iter());
        assert_eq!(s.quantile(0.5), 2);
        assert_eq!(s.quantile(1.0), 4);
    }

    #[test]
    fn csr_degrees() {
        let coo = Coo::from_edges(4, &[(0, 1), (2, 1), (3, 1), (1, 2)]);
        let (csr, _) = coo_to_csr(&coo);
        let s = DegreeStats::of_csr(&csr);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 1.0);
        let ni = DegreeStats::of_csr_nonisolated(&csr);
        assert_eq!(ni.num_vertices, 2);
        assert_eq!(ni.mean, 2.0);
    }

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::from_degrees(std::iter::empty());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cdf_at(3), 0.0);
    }
}
