//! Typed errors for graph-structure construction and I/O.
//!
//! The hot pipeline (sampling → reindex → CSR/CSC build) historically
//! asserted its structural invariants; the `try_*` constructors surface the
//! same invariants as values so a serving layer can quarantine a malformed
//! graph instead of crashing the process. The panicking constructors remain
//! (and delegate here) for internal call sites where a violation is a bug.

use crate::{EId, VId};
use std::fmt;

/// A structural-invariant violation in a graph representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An indptr array was empty (needs at least the terminating entry).
    EmptyIndptr,
    /// The first indptr entry was not zero.
    IndptrStart { first: EId },
    /// indptr decreased between positions `at` and `at + 1`.
    IndptrNotMonotone { at: usize },
    /// The final indptr entry disagrees with the edge-array length.
    IndptrEndMismatch { end: usize, edges: usize },
    /// Parallel src/dst arrays have different lengths.
    LengthMismatch { src: usize, dst: usize },
    /// A vertex id is outside the declared id space.
    VertexOutOfRange { v: VId, n: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyIndptr => write!(f, "indptr must have at least one entry"),
            GraphError::IndptrStart { first } => {
                write!(f, "indptr must start at 0, got {first}")
            }
            GraphError::IndptrNotMonotone { at } => {
                write!(f, "indptr must be non-decreasing, violated at index {at}")
            }
            GraphError::IndptrEndMismatch { end, edges } => {
                write!(f, "indptr ends at {end} but edge array has {edges} entries")
            }
            GraphError::LengthMismatch { src, dst } => {
                write!(f, "src/dst length mismatch: {src} vs {dst}")
            }
            GraphError::VertexOutOfRange { v, n } => {
                write!(f, "vertex id {v} out of range for {n} vertices")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Validate a CSR/CSC pointer array against its edge array.
pub(crate) fn validate_indptr(indptr: &[EId], edges: usize) -> Result<(), GraphError> {
    let first = *indptr.first().ok_or(GraphError::EmptyIndptr)?;
    if first != 0 {
        return Err(GraphError::IndptrStart { first });
    }
    if let Some(at) = indptr.windows(2).position(|w| w[0] > w[1]) {
        return Err(GraphError::IndptrNotMonotone { at });
    }
    let end = *indptr.last().unwrap() as usize;
    if end != edges {
        return Err(GraphError::IndptrEndMismatch { end, edges });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msgs = [
            GraphError::EmptyIndptr.to_string(),
            GraphError::IndptrStart { first: 3 }.to_string(),
            GraphError::IndptrNotMonotone { at: 1 }.to_string(),
            GraphError::IndptrEndMismatch { end: 2, edges: 3 }.to_string(),
            GraphError::LengthMismatch { src: 2, dst: 1 }.to_string(),
            GraphError::VertexOutOfRange { v: 9, n: 4 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn validate_indptr_catches_each_violation() {
        assert_eq!(validate_indptr(&[], 0), Err(GraphError::EmptyIndptr));
        assert_eq!(
            validate_indptr(&[1, 2], 1),
            Err(GraphError::IndptrStart { first: 1 })
        );
        assert_eq!(
            validate_indptr(&[0, 3, 2], 2),
            Err(GraphError::IndptrNotMonotone { at: 1 })
        );
        assert_eq!(
            validate_indptr(&[0, 2], 3),
            Err(GraphError::IndptrEndMismatch { end: 2, edges: 3 })
        );
        assert_eq!(validate_indptr(&[0, 1, 3], 3), Ok(()));
    }
}
