//! Graph I/O: the SNAP-style whitespace edge-list format the paper's
//! datasets ship in (`# comment` lines, then `src dst` pairs), plus a
//! compact binary format for fast reloads.
//!
//! With these, a user holding the real OGB/SNAP downloads can run every
//! experiment on the true graphs instead of the synthetic stand-ins.

use crate::{Coo, VId};
use std::io::{self, BufRead, Read, Write};
use std::path::Path;

/// Parse a SNAP-style edge list: `#`-prefixed comment lines are skipped;
/// every other non-empty line is `src dst` (any whitespace). Vertex ids may
/// be sparse; the id space is `max id + 1`.
pub fn read_edge_list<R: BufRead>(reader: R) -> io::Result<Coo> {
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut max_id: VId = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<VId> {
            tok.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: expected `src dst`", lineno + 1),
                )
            })?
            .parse::<VId>()
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })
        };
        let s = parse(it.next())?;
        let d = parse(it.next())?;
        max_id = max_id.max(s).max(d);
        src.push(s);
        dst.push(d);
    }
    let n = if src.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(Coo::new(n, src, dst))
}

/// Write a SNAP-style edge list with a header comment.
pub fn write_edge_list<W: Write>(coo: &Coo, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# GraphTensor-RS edge list: {} vertices, {} edges",
        coo.num_vertices(),
        coo.num_edges()
    )?;
    for (s, d) in coo.edges() {
        writeln!(writer, "{s}\t{d}")?;
    }
    Ok(())
}

const BIN_MAGIC: &[u8; 8] = b"GTGRAPH1";

/// Write the compact binary format (magic, vertex count, edge count, then
/// the raw little-endian src/dst arrays).
pub fn write_binary<W: Write>(coo: &Coo, mut writer: W) -> io::Result<()> {
    writer.write_all(BIN_MAGIC)?;
    writer.write_all(&(coo.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(coo.num_edges() as u64).to_le_bytes())?;
    for &v in &coo.src {
        writer.write_all(&v.to_le_bytes())?;
    }
    for &v in &coo.dst {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Read the binary format.
pub fn read_binary<R: Read>(mut reader: R) -> io::Result<Coo> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a GraphTensor binary graph (bad magic)",
        ));
    }
    let mut b8 = [0u8; 8];
    reader.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    reader.read_exact(&mut b8)?;
    let e = u64::from_le_bytes(b8) as usize;
    // A u32 id space bounds real edge counts; anything larger is a corrupt
    // or adversarial header — reject it before trusting it further.
    if e > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible edge count {e} in header"),
        ));
    }
    let mut read_arr = |len: usize| -> io::Result<Vec<VId>> {
        // Cap the preallocation: a truncated stream with a huge (but
        // in-range) claimed count must fail with UnexpectedEof, not abort
        // the process trying to reserve gigabytes up front.
        let mut out = Vec::with_capacity(len.min(1 << 22));
        let mut b4 = [0u8; 4];
        for _ in 0..len {
            reader.read_exact(&mut b4)?;
            let v = VId::from_le_bytes(b4);
            if v as usize >= n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("vertex id {v} out of range (n = {n})"),
                ));
            }
            out.push(v);
        }
        Ok(out)
    };
    let src = read_arr(e)?;
    let dst = read_arr(e)?;
    Ok(Coo::new(n, src, dst))
}

/// Load an edge list from a file path (text format).
pub fn load_edge_list_file(path: impl AsRef<Path>) -> io::Result<Coo> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Save an edge list to a file path (text format).
pub fn save_edge_list_file(coo: &Coo, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(coo, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "# Directed graph\n# src\tdst\n0\t1\n1 2\n\n% alt comment\n2\t0\n";
        let coo = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(coo.num_vertices(), 3);
        assert_eq!(
            coo.edges().collect::<Vec<_>>(),
            vec![(0, 1), (1, 2), (2, 0)]
        );
    }

    #[test]
    fn text_roundtrip() {
        let coo = crate::generators::erdos_renyi(40, 120, 3);
        let mut buf = Vec::new();
        write_edge_list(&coo, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        let mut a: Vec<_> = coo.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let coo = crate::generators::rmat(128, 800, 9);
        let mut buf = Vec::new();
        write_binary(&coo, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, coo);
    }

    #[test]
    fn malformed_lines_error_with_location() {
        let err = read_edge_list("0 1\nbogus\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn binary_rejects_corrupt_ids() {
        let coo = Coo::from_edges(3, &[(0, 1)]);
        let mut buf = Vec::new();
        write_binary(&coo, &mut buf).unwrap();
        // Corrupt the src id to something out of range.
        let idx = buf.len() - 8;
        buf[idx..idx + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let coo = read_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(coo.num_vertices(), 0);
        assert_eq!(coo.num_edges(), 0);
    }

    #[test]
    fn overflowing_vertex_id_is_an_error() {
        // 2^32 does not fit a VId; must be a parse error, not a panic or a
        // silent wrap.
        let err = read_edge_list("0 4294967296\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn binary_truncation_at_every_boundary_errors() {
        let coo = Coo::from_edges(5, &[(0, 1), (2, 3), (4, 0)]);
        let mut buf = Vec::new();
        write_binary(&coo, &mut buf).unwrap();
        // Truncating anywhere — mid-magic, mid-header, mid-payload — must
        // yield an error, never a panic or a partial graph.
        for cut in 0..buf.len() {
            assert!(
                read_binary(&buf[..cut]).is_err(),
                "truncation at {cut} of {} accepted",
                buf.len()
            );
        }
        assert!(read_binary(buf.as_slice()).is_ok());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTAGRPH\x00\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_huge_edge_count_header_is_rejected_cheaply() {
        // An adversarial header claiming 2^60 edges must not preallocate or
        // hang — it is rejected on sight.
        let mut buf = Vec::new();
        buf.extend_from_slice(BIN_MAGIC);
        buf.extend_from_slice(&10u64.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn binary_large_but_plausible_count_hits_eof_without_preallocating() {
        // In-range count with no payload: must fail with UnexpectedEof
        // (fast), not abort reserving memory for the claimed length.
        let mut buf = Vec::new();
        buf.extend_from_slice(BIN_MAGIC);
        buf.extend_from_slice(&10u64.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn adversarial_byte_flips_never_panic() {
        // Round-trip a graph, then flip each byte of the encoding in turn:
        // every variant must either parse to *some* graph or return an
        // error — no panics, no out-of-range ids accepted.
        let coo = Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut clean = Vec::new();
        write_binary(&coo, &mut clean).unwrap();
        for i in 0..clean.len() {
            let mut buf = clean.clone();
            buf[i] ^= 0xFF;
            if let Ok(g) = read_binary(buf.as_slice()) {
                let n = g.num_vertices();
                assert!(g.edges().all(|(s, d)| (s as usize) < n && (d as usize) < n));
            }
        }
    }
}
