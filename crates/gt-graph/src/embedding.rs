//! Dense per-vertex embedding tables (Fig 1c).
//!
//! An embedding table is one contiguous row-major `f32` buffer: row `v` is
//! vertex `v`'s feature vector. Preprocessing's embedding-lookup stage (K)
//! gathers sampled rows from the global table into a fresh compact table
//! that is then transferred to the device (§II-B, Fig 4b).

use crate::VId;

/// Row-major dense matrix of per-vertex features.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    data: Vec<f32>,
}

impl EmbeddingTable {
    /// Zero-initialized table.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        EmbeddingTable {
            rows,
            dim,
            data: vec![0.0; rows * dim],
        }
    }

    /// Build from an existing buffer; `data.len()` must equal `rows * dim`.
    pub fn from_vec(rows: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * dim, "buffer size mismatch");
        EmbeddingTable { rows, dim, data }
    }

    /// Deterministic pseudo-random table (values in [-1, 1]) from a seed.
    pub fn random(rows: usize, dim: usize, seed: u64) -> Self {
        // SplitMix64: cheap, seedable, good enough for feature init and far
        // faster than pulling a full RNG through hundreds of MB.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let data = (0..rows * dim)
            .map(|_| (next() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0)
            .collect();
        EmbeddingTable { rows, dim, data }
    }

    /// Number of rows (vertices).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `v` as a slice.
    pub fn row(&self, v: VId) -> &[f32] {
        let lo = v as usize * self.dim;
        &self.data[lo..lo + self.dim]
    }

    /// Mutable row `v`.
    pub fn row_mut(&mut self, v: VId) -> &mut [f32] {
        let lo = v as usize * self.dim;
        &mut self.data[lo..lo + self.dim]
    }

    /// The whole buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable whole buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Size in bytes (the normalization denominator of Figs 6a and 17a).
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Bytes of a single row.
    pub fn row_bytes(&self) -> u64 {
        (self.dim * std::mem::size_of::<f32>()) as u64
    }

    /// Gather `ids` into a new compact table (preprocessing stage K). Row `i`
    /// of the result is `self.row(ids[i])`.
    pub fn gather(&self, ids: &[VId]) -> EmbeddingTable {
        let mut out = EmbeddingTable::zeros(ids.len(), self.dim);
        for (i, &v) in ids.iter().enumerate() {
            out.row_mut(i as VId).copy_from_slice(self.row(v));
        }
        out
    }

    /// Gather a sub-range of `ids` into a caller-provided buffer — the
    /// chunked form used by the pipelined K→T path (§V-B, Fig 14b).
    pub fn gather_into(&self, ids: &[VId], out: &mut [f32]) {
        assert_eq!(out.len(), ids.len() * self.dim, "output buffer mismatch");
        for (i, &v) in ids.iter().enumerate() {
            out[i * self.dim..(i + 1) * self.dim].copy_from_slice(self.row(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous() {
        let mut t = EmbeddingTable::zeros(3, 2);
        t.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = EmbeddingTable::random(10, 8, 42);
        let b = EmbeddingTable::random(10, 8, 42);
        let c = EmbeddingTable::random(10, 8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|x| (-1.0..=1.0).contains(x)));
        // Not degenerate: values differ.
        assert!(a.data().iter().any(|&x| x != a.data()[0]));
    }

    #[test]
    fn gather_reorders_rows() {
        let t = EmbeddingTable::from_vec(3, 2, vec![0., 0., 1., 1., 2., 2.]);
        let g = t.gather(&[2, 0, 2]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[2., 2.]);
        assert_eq!(g.row(1), &[0., 0.]);
        assert_eq!(g.row(2), &[2., 2.]);
    }

    #[test]
    fn gather_into_chunk() {
        let t = EmbeddingTable::from_vec(3, 2, vec![0., 0., 1., 1., 2., 2.]);
        let mut buf = vec![0.0; 4];
        t.gather_into(&[1, 2], &mut buf);
        assert_eq!(buf, vec![1., 1., 2., 2.]);
    }

    #[test]
    fn byte_accounting() {
        let t = EmbeddingTable::zeros(5, 4);
        assert_eq!(t.bytes(), 80);
        assert_eq!(t.row_bytes(), 16);
    }

    #[test]
    #[should_panic]
    fn from_vec_size_mismatch_rejected() {
        EmbeddingTable::from_vec(2, 2, vec![0.0; 5]);
    }
}
