//! Format translation between COO, CSR, and CSC, with work accounting.
//!
//! Graph-approach frameworks keep COO resident and translate to CSR before
//! each forward aggregation (and to CSC before backward), paying a GPU sort:
//! the paper measures this at 64.5% of DGL's GCN time on products (§VI-A).
//! Each conversion here returns both the translated structure (computed
//! exactly, via counting sort — deterministic and stable) and a
//! [`KernelStats`] record that prices what the equivalent GPU translation
//! costs: a multi-pass radix sort over the edge arrays plus a pointer-array
//! scan, launched as many small kernels with irregular access.

use crate::{Coo, Csc, Csr, EId, VId};
use gt_sim::KernelStats;

/// Bytes per vertex/edge id.
const ID: u64 = std::mem::size_of::<VId>() as u64;

/// Number of radix-sort passes a 32-bit GPU sort performs (8 bits/pass).
const SORT_PASSES: u64 = 4;

/// Kernel launches of a device radix sort + scan pipeline (histogram, scan,
/// scatter per pass; pointer build; buffer management).
const SORT_LAUNCHES: u64 = 20;

/// Price the GPU-side translation of an `n`-edge graph with `v` vertices:
/// a multi-pass device radix sort plus pointer-array scan. Public so
/// baseline frameworks can charge translations they conceptually perform
/// even when this crate's exact structures are reused for the numerics.
pub fn translation_stats(n: u64, v: u64) -> KernelStats {
    // Each radix pass streams both id arrays in and out.
    let pass_bytes = 2 * n * ID;
    KernelStats {
        flops: 0,
        global_read_bytes: SORT_PASSES * pass_bytes + n * ID,
        global_write_bytes: SORT_PASSES * pass_bytes + (v + 1) * ID,
        cache_loaded_bytes: 0,
        // Double-buffered temporaries for the sort plus the output arrays.
        alloc_bytes: 2 * n * ID + (n + v + 1) * ID,
        pcie_bytes: 0,
        host_ops: 0,
        launches: SORT_LAUNCHES,
        irregular: true,
    }
}

/// Stable counting sort of COO edges by a key array; returns the permuted
/// (src, dst) arrays and the group-boundary pointer array.
fn counting_sort(num_vertices: usize, keys: &[VId], values: &[VId]) -> (Vec<EId>, Vec<VId>) {
    let mut counts = vec![0 as EId; num_vertices + 1];
    for &k in keys {
        counts[k as usize + 1] += 1;
    }
    for i in 0..num_vertices {
        counts[i + 1] += counts[i];
    }
    let indptr = counts.clone();
    let mut out = vec![0 as VId; values.len()];
    let mut cursor = counts;
    for (&k, &v) in keys.iter().zip(values) {
        let slot = cursor[k as usize];
        out[slot as usize] = v;
        cursor[k as usize] += 1;
    }
    (indptr, out)
}

/// COO → dst-indexed CSR (what forward aggregation needs).
pub fn coo_to_csr(coo: &Coo) -> (Csr, KernelStats) {
    let (indptr, srcs) = counting_sort(coo.num_vertices(), &coo.dst, &coo.src);
    (
        Csr::new(indptr, srcs),
        translation_stats(coo.num_edges() as u64, coo.num_vertices() as u64),
    )
}

/// COO → src-indexed CSC (what backward propagation needs).
pub fn coo_to_csc(coo: &Coo) -> (Csc, KernelStats) {
    let (indptr, dsts) = counting_sort(coo.num_vertices(), &coo.src, &coo.dst);
    (
        Csc::new(indptr, dsts),
        translation_stats(coo.num_edges() as u64, coo.num_vertices() as u64),
    )
}

/// CSR → COO expansion (ROC performs CSR→COO before SDDMM, §VII).
pub fn csr_to_coo(csr: &Csr) -> (Coo, KernelStats) {
    let n = csr.num_edges();
    let mut src = Vec::with_capacity(n);
    let mut dst = Vec::with_capacity(n);
    for (d, ss) in csr.iter() {
        for &s in ss {
            src.push(s);
            dst.push(d);
        }
    }
    // Expansion is a single streaming kernel: read indptr+srcs, write 2 arrays.
    let stats = KernelStats {
        global_read_bytes: csr.storage_bytes(),
        global_write_bytes: 2 * n as u64 * ID,
        alloc_bytes: 2 * n as u64 * ID,
        launches: 1,
        ..Default::default()
    };
    (Coo::new(csr.num_vertices(), src, dst), stats)
}

/// CSR → CSC transpose (needed between FWP and BWP when only CSR is kept).
pub fn csr_to_csc(csr: &Csr) -> (Csc, KernelStats) {
    let (coo, _) = csr_to_coo(csr);
    let (csc, sort) = coo_to_csc(&coo);
    let mut stats = sort;
    stats.global_read_bytes += csr.storage_bytes();
    stats.global_write_bytes += 2 * csr.num_edges() as u64 * ID;
    (csc, stats)
}

/// CSC → CSR transpose.
pub fn csc_to_csr(csc: &Csc) -> (Csr, KernelStats) {
    let n = csc.num_edges();
    let mut src = Vec::with_capacity(n);
    let mut dst = Vec::with_capacity(n);
    for (s, ds) in csc.iter() {
        for &d in ds {
            src.push(s);
            dst.push(d);
        }
    }
    let coo = Coo::new(csc.num_vertices(), src, dst);
    coo_to_csr(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_coo() -> Coo {
        Coo::from_edges(4, &[(0, 1), (1, 2), (2, 1), (3, 1), (3, 2)])
    }

    #[test]
    fn coo_to_csr_groups_by_dst() {
        let (csr, stats) = coo_to_csr(&fig1_coo());
        assert_eq!(csr.srcs(1), &[0, 2, 3]);
        assert_eq!(csr.srcs(2), &[1, 3]);
        assert_eq!(csr.srcs(0), &[] as &[VId]);
        assert!(stats.irregular);
        assert!(stats.launches >= SORT_LAUNCHES);
        assert!(stats.global_bytes() > 0);
    }

    #[test]
    fn coo_to_csc_groups_by_src() {
        let (csc, _) = coo_to_csc(&fig1_coo());
        assert_eq!(csc.dsts(3), &[1, 2]);
        assert_eq!(csc.dsts(0), &[1]);
    }

    #[test]
    fn csr_coo_roundtrip_preserves_edges() {
        let coo = fig1_coo();
        let (csr, _) = coo_to_csr(&coo);
        let (back, _) = csr_to_coo(&csr);
        let mut a: Vec<_> = coo.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn csr_to_csc_transposes() {
        let (csr, _) = coo_to_csr(&fig1_coo());
        let (csc, _) = csr_to_csc(&csr);
        assert_eq!(csc.dsts(3), &[1, 2]);
        assert_eq!(csc.num_edges(), csr.num_edges());
    }

    #[test]
    fn csc_to_csr_roundtrip() {
        let (csr, _) = coo_to_csr(&fig1_coo());
        let (csc, _) = csr_to_csc(&csr);
        let (back, _) = csc_to_csr(&csc);
        assert_eq!(back, csr);
    }

    #[test]
    fn counting_sort_is_stable() {
        // Two edges to dst 1 from srcs 5 then 3 keep their order.
        let coo = Coo::from_edges(6, &[(5, 1), (3, 1)]);
        let (csr, _) = coo_to_csr(&coo);
        assert_eq!(csr.srcs(1), &[5, 3]);
    }

    #[test]
    fn translation_cost_scales_with_edges() {
        let small = translation_stats(100, 10);
        let big = translation_stats(10_000, 10);
        assert!(big.global_bytes() > 50 * small.global_bytes());
        // but launch count is fixed — the overhead that hurts small graphs.
        assert_eq!(small.launches, big.launches);
    }
}
