//! Coordinate-list (COO) edge storage: parallel `src`/`dst` arrays indexed by
//! edge id (Fig 1b, left).

use crate::error::GraphError;
use crate::VId;

/// An edge list in coordinate format. Edges are directed src → dst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo {
    /// Number of vertices in the id space (vertex ids are `0..num_vertices`).
    num_vertices: usize,
    /// Source vertex of each edge.
    pub src: Vec<VId>,
    /// Destination vertex of each edge.
    pub dst: Vec<VId>,
}

impl Coo {
    /// Build from parallel arrays. Panics if lengths differ or an id is out
    /// of range (checked in debug builds only for speed). Use
    /// [`try_new`](Self::try_new) for full validation without panicking.
    pub fn new(num_vertices: usize, src: Vec<VId>, dst: Vec<VId>) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        debug_assert!(src.iter().all(|&v| (v as usize) < num_vertices));
        debug_assert!(dst.iter().all(|&v| (v as usize) < num_vertices));
        Coo {
            num_vertices,
            src,
            dst,
        }
    }

    /// Build from parallel arrays with full validation (lengths and id
    /// bounds, in every build profile), returning violations as values.
    pub fn try_new(num_vertices: usize, src: Vec<VId>, dst: Vec<VId>) -> Result<Self, GraphError> {
        if src.len() != dst.len() {
            return Err(GraphError::LengthMismatch {
                src: src.len(),
                dst: dst.len(),
            });
        }
        for &v in src.iter().chain(dst.iter()) {
            if v as usize >= num_vertices {
                return Err(GraphError::VertexOutOfRange { v, n: num_vertices });
            }
        }
        Ok(Coo {
            num_vertices,
            src,
            dst,
        })
    }

    /// An empty graph over `num_vertices` vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Coo {
            num_vertices,
            src: Vec::new(),
            dst: Vec::new(),
        }
    }

    /// Build from (src, dst) pairs.
    pub fn from_edges(num_vertices: usize, edges: &[(VId, VId)]) -> Self {
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        for &(s, d) in edges {
            src.push(s);
            dst.push(d);
        }
        Coo::new(num_vertices, src, dst)
    }

    /// Number of vertices in the id space.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Iterate over edges as (src, dst).
    pub fn edges(&self) -> impl Iterator<Item = (VId, VId)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Storage footprint in bytes (two id arrays — the "heavier storage
    /// overhead than CSR/CSC" of §II-A).
    pub fn storage_bytes(&self) -> u64 {
        (self.src.len() + self.dst.len()) as u64 * std::mem::size_of::<VId>() as u64
    }

    /// Remove duplicate edges and self-loops, preserving first occurrence
    /// order of the deduplicated set. Generators use this to clean RMAT
    /// output.
    pub fn dedup(mut self) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(self.src.len());
        let mut s = Vec::with_capacity(self.src.len());
        let mut d = Vec::with_capacity(self.dst.len());
        for (a, b) in self.src.iter().copied().zip(self.dst.iter().copied()) {
            if a != b && seen.insert(((a as u64) << 32) | b as u64) {
                s.push(a);
                d.push(b);
            }
        }
        self.src = s;
        self.dst = d;
        self
    }

    /// Append the reverse of every edge (make the graph symmetric).
    pub fn symmetrize(mut self) -> Self {
        let n = self.num_edges();
        self.src.reserve(n);
        self.dst.reserve(n);
        for i in 0..n {
            let (s, d) = (self.src[i], self.dst[i]);
            self.src.push(d);
            self.dst.push(s);
        }
        self.dedup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let g = Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    #[should_panic]
    fn mismatched_arrays_rejected() {
        Coo::new(3, vec![0, 1], vec![2]);
    }

    #[test]
    fn try_new_validates_lengths_and_bounds() {
        assert_eq!(
            Coo::try_new(3, vec![0, 1], vec![2]),
            Err(GraphError::LengthMismatch { src: 2, dst: 1 })
        );
        assert_eq!(
            Coo::try_new(3, vec![0, 7], vec![1, 2]),
            Err(GraphError::VertexOutOfRange { v: 7, n: 3 })
        );
        assert!(Coo::try_new(3, vec![0, 1], vec![1, 2]).is_ok());
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let g = Coo::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 0)]).dedup();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let g = Coo::from_edges(3, &[(0, 1)]).symmetrize();
        let mut e = g.edges().collect::<Vec<_>>();
        e.sort();
        assert_eq!(e, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn storage_is_two_arrays() {
        let g = Coo::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.storage_bytes(), 16);
    }
}
