//! Compressed sparse row, with the paper's orientation: the pointer array is
//! indexed by **destination** vertex and the underlying vertex array stores
//! **source** ids (§II-A, Fig 1b). This is the format forward-propagation
//! aggregation wants: "src node information per dst vertex".

use crate::error::{validate_indptr, GraphError};
use crate::{EId, VId};

/// Dst-indexed adjacency: `srcs(d)` are the in-neighbors of destination `d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `indptr[d]..indptr[d+1]` bounds dst `d`'s slice of `srcs`.
    pub indptr: Vec<EId>,
    /// Concatenated source ids.
    pub srcs: Vec<VId>,
}

impl Csr {
    /// Construct from raw arrays, validating monotonicity and bounds.
    /// Panics on invalid input; use [`try_new`](Self::try_new) to get the
    /// violation as a value.
    pub fn new(indptr: Vec<EId>, srcs: Vec<VId>) -> Self {
        Csr::try_new(indptr, srcs).unwrap_or_else(|e| panic!("invalid CSR: {e}"))
    }

    /// Construct from raw arrays, returning the structural-invariant
    /// violation instead of panicking.
    pub fn try_new(indptr: Vec<EId>, srcs: Vec<VId>) -> Result<Self, GraphError> {
        validate_indptr(&indptr, srcs.len())?;
        Ok(Csr { indptr, srcs })
    }

    /// Number of destination vertices.
    pub fn num_vertices(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// In-neighbors (sources) of destination `d`.
    pub fn srcs(&self, d: VId) -> &[VId] {
        let lo = self.indptr[d as usize] as usize;
        let hi = self.indptr[d as usize + 1] as usize;
        &self.srcs[lo..hi]
    }

    /// In-degree of destination `d`.
    pub fn degree(&self, d: VId) -> usize {
        (self.indptr[d as usize + 1] - self.indptr[d as usize]) as usize
    }

    /// Iterate `(dst, &[srcs])` over all destinations.
    pub fn iter(&self) -> impl Iterator<Item = (VId, &[VId])> + '_ {
        (0..self.num_vertices() as VId).map(move |d| (d, self.srcs(d)))
    }

    /// Edge-id range belonging to destination `d` (for per-edge payloads).
    pub fn edge_range(&self, d: VId) -> std::ops::Range<usize> {
        self.indptr[d as usize] as usize..self.indptr[d as usize + 1] as usize
    }

    /// Storage footprint in bytes (pointer array + vertex array).
    pub fn storage_bytes(&self) -> u64 {
        (self.indptr.len() * std::mem::size_of::<EId>()
            + self.srcs.len() * std::mem::size_of::<VId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig 1a example graph: edges 0→1, 2→1, 3→1, 1→2, 3→2 become
    /// dst-indexed CSR.
    fn fig1() -> Csr {
        // dst 0: {}; dst 1: {0,2,3}; dst 2: {1,3}; dst 3: {}
        Csr::new(vec![0, 0, 3, 5, 5], vec![0, 2, 3, 1, 3])
    }

    #[test]
    fn neighbor_slices() {
        let g = fig1();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.srcs(0), &[] as &[VId]);
        assert_eq!(g.srcs(1), &[0, 2, 3]);
        assert_eq!(g.srcs(2), &[1, 3]);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    fn edge_ranges_partition_edges() {
        let g = fig1();
        let total: usize = (0..4).map(|d| g.edge_range(d).len()).sum();
        assert_eq!(total, g.num_edges());
        assert_eq!(g.edge_range(1), 0..3);
        assert_eq!(g.edge_range(2), 3..5);
    }

    #[test]
    #[should_panic]
    fn decreasing_indptr_rejected() {
        Csr::new(vec![0, 3, 2], vec![0, 1, 2]);
    }

    #[test]
    fn try_new_reports_violations_as_values() {
        assert_eq!(
            Csr::try_new(vec![0, 3, 2], vec![0, 1, 2]),
            Err(GraphError::IndptrNotMonotone { at: 1 })
        );
        assert_eq!(
            Csr::try_new(vec![0, 2], vec![0, 1, 2]),
            Err(GraphError::IndptrEndMismatch { end: 2, edges: 3 })
        );
        assert!(Csr::try_new(vec![0, 0, 3, 5, 5], vec![0, 2, 3, 1, 3]).is_ok());
    }

    #[test]
    #[should_panic]
    fn indptr_end_mismatch_rejected() {
        Csr::new(vec![0, 2], vec![0, 1, 2]);
    }

    #[test]
    fn iter_visits_all_vertices() {
        let g = fig1();
        assert_eq!(g.iter().count(), 4);
        let degrees: Vec<usize> = g.iter().map(|(_, s)| s.len()).collect();
        assert_eq!(degrees, vec![0, 3, 2, 0]);
    }
}
