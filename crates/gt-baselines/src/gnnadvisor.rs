//! GNNAdvisor-style aggregation: neighbor-group partitioning (§VI-A).
//!
//! GNNAdvisor "partitions neighbors into multiple neighbor groups and
//! allocates them to different SMs, which makes multiple SMs updating the
//! same output vector of a dst, thereby requiring synchronization". That
//! balances load when training on a *full* power-law graph, but sampled
//! subgraphs are already balanced (Fig 8), so here it only costs: the dst
//! row is resident in several SMs, partial sums are written back with
//! atomics, and an extra reduction pass merges them.
//!
//! GNNAdvisor has no edge-weighting primitive; NGCF's `g` falls back to
//! the DL-approach ops (see `frameworks.rs`).

use gt_core::napa::Pull;
use gt_sample::LayerGraph;
use gt_sim::{CacheSim, KernelStats, Phase};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{ExecCtx, Op, ParamStore};
use gt_tensor::sparse::Reduce;
use std::sync::Arc;

/// Neighbors per group; GNNAdvisor tunes this for full-graph hubs, which
/// over-partitions the shallow degrees of sampled subgraphs.
pub const GROUP_SIZE: usize = 4;

/// GNNAdvisor aggregation with neighbor grouping.
#[derive(Debug, Clone)]
pub struct NeighborGroupAggregate {
    /// Reference numerics.
    pub pull: Pull,
}

impl NeighborGroupAggregate {
    /// Unweighted aggregation over `layer`.
    pub fn new(layer: Arc<LayerGraph>, agg: Reduce) -> Self {
        NeighborGroupAggregate {
            pull: Pull::new(layer, agg),
        }
    }

    /// Work charged per direction.
    pub fn stats(&self, f: usize, num_sms: usize) -> KernelStats {
        let layer = &self.pull.layer;
        let rb = (f * 4) as u64;
        let mut cache = CacheSim::new(num_sms);
        let mut block = 0usize;
        let mut groups_total = 0u64;
        for (d, srcs) in layer.csr.iter() {
            for group in srcs.chunks(GROUP_SIZE) {
                // Each neighbor group is its own block: the dst row lands
                // on every SM that hosts one of its groups.
                cache.touch_block(block, d as u64, rb);
                for &s in group {
                    cache.touch_block(block, s as u64, rb);
                }
                block += 1;
                groups_total += 1;
            }
        }
        let e = layer.csr.num_edges() as u64;
        KernelStats {
            flops: e * f as u64 + groups_total * f as u64, // + merge pass
            global_read_bytes: cache.loaded_bytes() + layer.csr.storage_bytes(),
            // Atomic partial-sum write per group, then the merged output.
            global_write_bytes: (groups_total + layer.num_dst as u64) * rb,
            cache_loaded_bytes: cache.loaded_bytes(),
            launches: 2, // aggregation + synchronization/merge kernel
            ..Default::default()
        }
    }
}

impl Op for NeighborGroupAggregate {
    fn name(&self) -> &str {
        "neighbor_group_aggregate"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let out = self.pull.compute(inputs[0], None);
        let stats = self.stats(inputs[0].cols(), ctx.sim.device().num_sms);
        ctx.sim.record_gpu(Phase::Aggregation, stats);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let (dx, _) = self.pull.compute_backward(inputs[0], None, grad);
        let mut stats = self.stats(inputs[0].cols(), ctx.sim.device().num_sms);
        stats.global_write_bytes = dx.bytes();
        ctx.sim.record_gpu(Phase::Aggregation, stats);
        vec![Some(dx)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.pull.layer.num_dst, in_shapes[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::{coo_to_csc, coo_to_csr};
    use gt_graph::{Coo, Csr};

    /// One dst with 12 neighbors → 3 groups of 4.
    fn layer() -> Arc<LayerGraph> {
        let edges: Vec<(u32, u32)> = (1..13u32).map(|s| (s, 0)).collect();
        let coo = Coo::from_edges(13, &edges);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=1].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 1,
            num_src: 13,
        })
    }

    #[test]
    fn grouping_duplicates_dst_rows() {
        let l = layer();
        let adv = NeighborGroupAggregate::new(Arc::clone(&l), Reduce::Sum);
        let adv_stats = adv.stats(8, 8);
        let napa_stats = adv.pull.forward_stats(8, 8);
        // 3 groups on (up to) 3 SMs load the dst row up to 3×; NAPA once.
        assert!(adv_stats.cache_loaded_bytes > napa_stats.cache_loaded_bytes);
        // Sync/merge writes exceed NAPA's single output write.
        assert!(adv_stats.global_write_bytes > napa_stats.global_write_bytes);
        assert_eq!(adv_stats.launches, 2);
    }

    #[test]
    fn numerics_still_match() {
        use gt_sim::{DeviceSpec, SimContext};
        let l = layer();
        let x = Matrix::from_fn(13, 2, |r, _| r as f32);
        let adv = NeighborGroupAggregate::new(Arc::clone(&l), Reduce::Mean);
        let mut sim = SimContext::new(DeviceSpec::tiny());
        let mut params = ParamStore::new();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let got = adv.forward(&[&x], &mut ctx);
        let want = adv.pull.compute(&x, None);
        assert!(got.max_abs_diff(&want) < 1e-6);
    }
}
