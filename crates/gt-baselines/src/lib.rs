//! Baseline GNN frameworks, reimplemented as execution strategies on the
//! GraphTensor-RS substrate (§III, DESIGN.md §2).
//!
//! Every baseline computes *numerically identical* results to GraphTensor
//! (the kernels share the same math) while charging the device model the
//! way its real counterpart behaves:
//!
//! * [`dl`] — **DL-approach** (PyG, NeuGraph, FlexGraph): sparse→dense
//!   conversion materializes per-edge embedding copies before dense
//!   scatter ops → GPU *memory bloat* (Fig 6a);
//! * [`graph_approach`] — **Graph-approach** (DGL, FeatGraph, G3): COO
//!   resident, per-batch COO→CSR/CSC *format translation*, edge-wise
//!   SpMM/SDDMM scheduling → *cache bloat* (Fig 6b);
//! * [`gnnadvisor`] — GNNAdvisor: neighbor-group partitioning balances load
//!   but makes multiple SMs update one destination → synchronization
//!   overhead; no edge-weighting support, so NGCF falls back to DL ops;
//! * [`frameworks`] — the [`gt_core::Framework`] implementations: `Pyg`,
//!   `PygMt`, `Dgl`, `GnnAdvisor`, `Salient`.

pub mod dl;
pub mod frameworks;
pub mod gnnadvisor;
pub mod graph_approach;

pub use frameworks::{Baseline, BaselineKind};
