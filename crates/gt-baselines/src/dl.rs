//! DL-approach kernels (PyG-style): dense scatter ops + sparse→dense
//! conversion where DL user code needs it (§III, Fig 5a).
//!
//! *Aggregation*: recent DL-approach frameworks fused the gather into the
//! scatter ("several DL approach frameworks have addressed the memory
//! bloat issue on aggregation", §III), so `scatter_sum`/`scatter_mean`
//! runs edge-wise over the index directly — no dense copies, but edge-wise
//! scheduling and its cache bloat remain (Table III marks PyG's cache
//! bloat ○). That is why "PyG exhibits similar performance to Base-GT for
//! GCN" (§VI-A) while still losing on cache traffic.
//!
//! *Edge weighting*: has no fused kernel — user code composes elementwise
//! DL ops, which requires materializing **two** dense per-edge matrices
//! (src and dst copies). This is the memory bloat of Fig 6a ("increases
//! the memory footprint by 5.8×") and why PyG collapses on NGCF.
//!
//! Numerics are delegated to the NAPA reference implementations, which
//! compute the same functions.

use gt_core::config::HFn;
use gt_core::napa::schedule::edge_wise_cache;
use gt_core::napa::{NeighborApply, Pull};
use gt_sample::LayerGraph;
use gt_sim::{KernelStats, Phase};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{ExecCtx, Op, ParamStore};
use gt_tensor::sparse::{EdgeOp, Reduce};
use std::sync::Arc;

/// Bytes of one embedding row.
fn row_bytes(f: usize) -> u64 {
    (f * 4) as u64
}

/// Charge the sparse→dense conversion of `copies` dense edge-matrices
/// (each `num_edges × f`), leaving them allocated; returns the bloat bytes.
fn charge_sparse2dense(layer: &LayerGraph, f: usize, copies: u64, ctx: &mut ExecCtx) -> u64 {
    let e = layer.csr.num_edges() as u64;
    let bloat = copies * e * row_bytes(f);
    // The gather reads table rows irregularly and writes the dense copies.
    ctx.sim.record_gpu(
        Phase::Sparse2Dense,
        KernelStats {
            global_read_bytes: bloat,
            global_write_bytes: bloat,
            alloc_bytes: bloat,
            launches: copies,
            ..Default::default()
        },
    );
    // On a real device this is where PyG dies (NGCF on livejournal); the
    // tracker latches the OOM and we keep computing on the host, so the
    // batch report can state both the result and the failure.
    match ctx.sim.memory.alloc(bloat) {
        Ok(()) => bloat,
        Err(_) => 0,
    }
}

/// DL-approach aggregation: fused gather-scatter over the edge index
/// (edge-wise scheduled, no dense copies).
#[derive(Debug, Clone)]
pub struct DlAggregate {
    /// Reference implementation carrying the subgraph and `f`/`h` modes.
    pub pull: Pull,
}

impl DlAggregate {
    /// Unweighted (GCN) aggregation.
    pub fn new(layer: Arc<LayerGraph>, agg: Reduce) -> Self {
        DlAggregate {
            pull: Pull::new(layer, agg),
        }
    }

    /// Weighted (NGCF) aggregation.
    pub fn weighted(layer: Arc<LayerGraph>, agg: Reduce, h: HFn) -> Self {
        DlAggregate {
            pull: Pull::weighted(layer, agg, h),
        }
    }

    /// Edge-wise scatter work: per-edge blocks → cache bloat; atomic
    /// per-edge output updates.
    fn charge_scatter(&self, f: usize, ctx: &mut ExecCtx) {
        let layer = &self.pull.layer;
        let cache = edge_wise_cache(layer, row_bytes(f), ctx.sim.device().num_sms);
        let e = layer.csr.num_edges() as u64;
        ctx.sim.record_gpu(
            Phase::Aggregation,
            KernelStats {
                flops: e * f as u64,
                global_read_bytes: cache.loaded_bytes() + layer.csr.storage_bytes(),
                global_write_bytes: e * row_bytes(f),
                cache_loaded_bytes: cache.loaded_bytes(),
                launches: 1,
                ..Default::default()
            },
        );
    }
}

impl Op for DlAggregate {
    fn name(&self) -> &str {
        "dl_aggregate"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let f = inputs[0].cols();
        let out = self.pull.compute(inputs[0], inputs.get(1).copied());
        self.charge_scatter(f, ctx);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let f = inputs[0].cols();
        let (dx, dw) = self
            .pull
            .compute_backward(inputs[0], inputs.get(1).copied(), grad);
        self.charge_scatter(f, ctx);
        if self.pull.h.is_some() {
            vec![Some(dx), dw]
        } else {
            vec![Some(dx)]
        }
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.pull.layer.num_dst, in_shapes[0].1)
    }
}

/// DL-approach edge weighting: two dense gathers (src and dst matrices),
/// then an elementwise DL op — "they cannot avoid the issue on edge weight
/// calculation that relies on DL operation-based user code" (§III).
#[derive(Debug, Clone)]
pub struct DlEdgeWeight {
    /// Reference implementation (subgraph + `g`).
    pub na: NeighborApply,
}

impl DlEdgeWeight {
    /// Weight `layer`'s edges with `g` the DL-approach way.
    pub fn new(layer: Arc<LayerGraph>, g: EdgeOp) -> Self {
        DlEdgeWeight {
            na: NeighborApply::new(layer, g),
        }
    }

    fn charge_elementwise(&self, f: usize, ctx: &mut ExecCtx) {
        let e = self.na.layer.csr.num_edges() as u64;
        ctx.sim.record_gpu(
            Phase::EdgeWeighting,
            KernelStats {
                flops: e * f as u64,
                global_read_bytes: 2 * e * row_bytes(f),
                global_write_bytes: e * row_bytes(f),
                launches: 1,
                ..Default::default()
            },
        );
    }
}

impl Op for DlEdgeWeight {
    fn name(&self) -> &str {
        "dl_edge_weight"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let f = inputs[0].cols();
        // Two dense copies: src matrix and dst matrix (Fig 5a bottom).
        let bloat = charge_sparse2dense(&self.na.layer, f, 2, ctx);
        let out = self.na.compute(inputs[0]);
        self.charge_elementwise(f, ctx);
        ctx.sim.memory.free(bloat);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let f = inputs[0].cols();
        let bloat = charge_sparse2dense(&self.na.layer, f, 2, ctx);
        let dx = self.na.compute_backward(inputs[0], grad);
        self.charge_elementwise(f, ctx);
        ctx.sim.memory.free(bloat);
        vec![Some(dx)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.na.layer.csr.num_edges(), in_shapes[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::{coo_to_csc, coo_to_csr};
    use gt_graph::{Coo, Csr};
    use gt_sim::{DeviceSpec, SimContext};

    fn layer() -> Arc<LayerGraph> {
        let coo = Coo::from_edges(4, &[(1, 0), (2, 0), (3, 1), (0, 1)]);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=2].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 2,
            num_src: 4,
        })
    }

    fn ctx_parts() -> (SimContext, ParamStore) {
        (SimContext::new(DeviceSpec::tiny()), ParamStore::new())
    }

    #[test]
    fn dl_aggregate_matches_napa_numerics() {
        let l = layer();
        let x = Matrix::from_vec(4, 2, vec![1., 1., 2., 2., 3., 3., 4., 4.]);
        let dl = DlAggregate::new(Arc::clone(&l), Reduce::Mean);
        let napa = Pull::new(l, Reduce::Mean);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let got = dl.forward(&[&x], &mut ctx);
        assert!(got.max_abs_diff(&napa.compute(&x, None)) < 1e-6);
    }

    #[test]
    fn dl_aggregate_is_fused_but_edge_wise() {
        let l = layer();
        let x = Matrix::zeros(4, 8);
        let dl = DlAggregate::new(l, Reduce::Sum);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let _ = dl.forward(&[&x], &mut ctx);
        // Fused scatter: no sparse→dense copies for plain aggregation...
        assert_eq!(ctx.sim.phase_stats(Phase::Sparse2Dense).alloc_bytes, 0);
        // ...but edge-wise scheduling still bloats the cache.
        assert!(ctx.sim.phase_stats(Phase::Aggregation).cache_loaded_bytes > 0);
    }

    #[test]
    fn dl_edge_weight_allocates_two_copies() {
        let l = layer();
        let x = Matrix::zeros(4, 8);
        let w = DlEdgeWeight::new(l, EdgeOp::ElemMul);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let out = w.forward(&[&x], &mut ctx);
        assert_eq!(out.rows(), 4);
        assert_eq!(ctx.sim.phase_stats(Phase::Sparse2Dense).alloc_bytes, 256);
    }

    #[test]
    fn oom_latches_on_tiny_device() {
        // 64 MiB device; build a bloat larger than that.
        let edges: Vec<(u32, u32)> = (1..5000u32).map(|s| (s, 0)).collect();
        let coo = Coo::from_edges(5000, &edges);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=1].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        let l = Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 1,
            num_src: 5000,
        });
        let x = Matrix::zeros(5000, 4096); // 2 × 5000 edges × 16 KiB ≈ 156 MB
        let dl = DlEdgeWeight::new(l, EdgeOp::ElemMul);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let _ = dl.forward(&[&x], &mut ctx);
        assert!(ctx.sim.memory.oom().is_some());
    }
}
