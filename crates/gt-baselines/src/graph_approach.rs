//! Graph-approach kernels (DGL-style): COO-resident SpMM/SDDMM simulation
//! with edge-wise thread scheduling (§III, Fig 5b/5c).
//!
//! The framework keeps the sampled subgraphs in COO. Forward aggregation
//! needs "src node information per dst vertex", so each layer pays a
//! COO→CSR device sort before SpMM; backward needs the transpose, paying
//! COO→CSC (Fig 16a: translation is 64.5% of DGL's GCN time on products).
//! Both SpMM and SDDMM allocate one thread block per *edge*, so embeddings
//! of shared endpoints are loaded into many SMs — the cache bloat of
//! Fig 6b (+81.9% loaded data on average).

use gt_core::config::HFn;
use gt_core::napa::schedule::edge_wise_cache;
use gt_core::napa::{NeighborApply, Pull};
use gt_graph::convert::translation_stats;
use gt_sample::LayerGraph;
use gt_sim::{KernelStats, Phase};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{ExecCtx, Op, ParamStore};
use gt_tensor::sparse::{EdgeOp, Reduce};
use std::sync::Arc;

fn row_bytes(f: usize) -> u64 {
    (f * 4) as u64
}

/// Charge one COO→CSR (or CSC) translation for `layer`.
fn charge_translation(layer: &LayerGraph, ctx: &mut ExecCtx) {
    let stats = translation_stats(layer.csr.num_edges() as u64, layer.num_src as u64);
    let _ = ctx.sim.memory.alloc(stats.alloc_bytes);
    ctx.sim.record_gpu(Phase::FormatTranslation, stats);
    // Sort temporaries die after the translation; the structure stays.
    let e = layer.csr.num_edges() as u64;
    ctx.sim.memory.free(2 * e * 4);
}

/// Edge-wise SpMM work: cache bloat + atomic per-edge output updates.
fn edge_wise_agg_stats(layer: &LayerGraph, f: usize, num_sms: usize) -> KernelStats {
    let cache = edge_wise_cache(layer, row_bytes(f), num_sms);
    let e = layer.csr.num_edges() as u64;
    KernelStats {
        flops: e * f as u64,
        global_read_bytes: cache.loaded_bytes() + layer.csr.storage_bytes(),
        // Atomic accumulation writes once per edge, not once per dst.
        global_write_bytes: e * row_bytes(f),
        cache_loaded_bytes: cache.loaded_bytes(),
        launches: 1,
        ..Default::default()
    }
}

/// Graph-approach aggregation (SpMM over simulated sparse matrix).
#[derive(Debug, Clone)]
pub struct EdgeWiseAggregate {
    /// Reference numerics (subgraph + modes).
    pub pull: Pull,
    /// Charge COO→CSR/CSC translations (DGL keeps COO resident). ROC keeps
    /// CSR resident, so its SpMM skips the translation.
    pub translate: bool,
}

impl EdgeWiseAggregate {
    /// Unweighted aggregation with per-direction COO translations (DGL).
    pub fn new(layer: Arc<LayerGraph>, agg: Reduce) -> Self {
        EdgeWiseAggregate {
            pull: Pull::new(layer, agg),
            translate: true,
        }
    }

    /// Weighted aggregation with translations (DGL).
    pub fn weighted(layer: Arc<LayerGraph>, agg: Reduce, h: HFn) -> Self {
        EdgeWiseAggregate {
            pull: Pull::weighted(layer, agg, h),
            translate: true,
        }
    }

    /// Unweighted aggregation over resident CSR (ROC).
    pub fn without_translation(layer: Arc<LayerGraph>, agg: Reduce) -> Self {
        EdgeWiseAggregate {
            pull: Pull::new(layer, agg),
            translate: false,
        }
    }

    /// Weighted aggregation over resident CSR (ROC).
    pub fn weighted_no_translation(layer: Arc<LayerGraph>, agg: Reduce, h: HFn) -> Self {
        EdgeWiseAggregate {
            pull: Pull::weighted(layer, agg, h),
            translate: false,
        }
    }
}

impl Op for EdgeWiseAggregate {
    fn name(&self) -> &str {
        "edge_wise_aggregate"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        // FWP SpMM wants CSR; COO-resident frameworks translate first.
        if self.translate {
            charge_translation(&self.pull.layer, ctx);
        }
        let out = self.pull.compute(inputs[0], inputs.get(1).copied());
        let stats =
            edge_wise_agg_stats(&self.pull.layer, inputs[0].cols(), ctx.sim.device().num_sms);
        ctx.sim.record_gpu(Phase::Aggregation, stats);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        // BWP traverses dst→src: translate to CSC (Fig 3b) — needed by
        // both COO-resident (DGL) and CSR-resident (ROC) frameworks.
        charge_translation(&self.pull.layer, ctx);
        let (dx, dw) = self
            .pull
            .compute_backward(inputs[0], inputs.get(1).copied(), grad);
        let mut stats =
            edge_wise_agg_stats(&self.pull.layer, inputs[0].cols(), ctx.sim.device().num_sms);
        stats.global_write_bytes = dx.bytes() + dw.as_ref().map_or(0, |w| w.bytes());
        ctx.sim.record_gpu(Phase::Aggregation, stats);
        if self.pull.h.is_some() {
            vec![Some(dx), dw]
        } else {
            vec![Some(dx)]
        }
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.pull.layer.num_dst, in_shapes[0].1)
    }
}

/// Graph-approach edge weighting (SDDMM), edge-wise scheduled: COO is
/// already the right format (no translation), but every edge block loads
/// both endpoint embeddings → maximal cache bloat (the Fig 6b measurement).
#[derive(Debug, Clone)]
pub struct EdgeWiseEdgeWeight {
    /// Reference numerics (subgraph + `g`).
    pub na: NeighborApply,
    /// Charge a CSR→COO translation before SDDMM (ROC, §VII).
    pub translate: bool,
}

impl EdgeWiseEdgeWeight {
    /// Weight `layer`'s edges with `g`, edge-wise (COO resident — DGL).
    pub fn new(layer: Arc<LayerGraph>, g: EdgeOp) -> Self {
        EdgeWiseEdgeWeight {
            na: NeighborApply::new(layer, g),
            translate: false,
        }
    }

    /// Edge weighting that must first expand CSR→COO (ROC).
    pub fn with_translation(layer: Arc<LayerGraph>, g: EdgeOp) -> Self {
        EdgeWiseEdgeWeight {
            na: NeighborApply::new(layer, g),
            translate: true,
        }
    }

    /// Work charged per direction (forward/backward symmetric).
    pub fn stats(&self, f: usize, num_sms: usize) -> KernelStats {
        let layer = &self.na.layer;
        let cache = edge_wise_cache(layer, row_bytes(f), num_sms);
        let e = layer.csr.num_edges() as u64;
        KernelStats {
            flops: e * f as u64,
            global_read_bytes: cache.loaded_bytes() + layer.csr.storage_bytes(),
            global_write_bytes: e * row_bytes(f),
            cache_loaded_bytes: cache.loaded_bytes(),
            launches: 1,
            ..Default::default()
        }
    }
}

impl Op for EdgeWiseEdgeWeight {
    fn name(&self) -> &str {
        "edge_wise_edge_weight"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        if self.translate {
            charge_translation(&self.na.layer, ctx);
        }
        let out = self.na.compute(inputs[0]);
        let stats = self.stats(inputs[0].cols(), ctx.sim.device().num_sms);
        ctx.sim.record_gpu(Phase::EdgeWeighting, stats);
        out
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let dx = self.na.compute_backward(inputs[0], grad);
        let mut stats = self.stats(inputs[0].cols(), ctx.sim.device().num_sms);
        stats.global_write_bytes = dx.bytes();
        ctx.sim.record_gpu(Phase::EdgeWeighting, stats);
        vec![Some(dx)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        (self.na.layer.csr.num_edges(), in_shapes[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::{coo_to_csc, coo_to_csr};
    use gt_graph::{Coo, Csr};
    use gt_sim::{DeviceSpec, SimContext};

    fn layer() -> Arc<LayerGraph> {
        // A hub: dsts 0..8 all read src 8 → edge-wise duplicates row 8.
        let mut edges: Vec<(u32, u32)> = (0..8u32).map(|d| (8, d)).collect();
        edges.extend((0..8u32).map(|d| (d, d)));
        let coo = Coo::from_edges(9, &edges);
        let (csr_full, _) = coo_to_csr(&coo);
        let csr = Csr::new(csr_full.indptr[..=8].to_vec(), csr_full.srcs.clone());
        let (csc, _) = coo_to_csc(&coo);
        Arc::new(LayerGraph {
            csr,
            csc,
            num_dst: 8,
            num_src: 9,
        })
    }

    fn ctx_parts() -> (SimContext, ParamStore) {
        (SimContext::new(DeviceSpec::tiny()), ParamStore::new())
    }

    #[test]
    fn aggregation_charges_translation_each_direction() {
        let l = layer();
        let x = Matrix::zeros(9, 4);
        let agg = EdgeWiseAggregate::new(l, Reduce::Mean);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let out = agg.forward(&[&x], &mut ctx);
        assert!(ctx.sim.phase_us(Phase::FormatTranslation) > 0.0);
        let fwd_translation = ctx.sim.phase_us(Phase::FormatTranslation);
        let g = Matrix::zeros(out.rows(), out.cols());
        agg.backward(&[&x], &out, &g, &mut ctx);
        assert!(ctx.sim.phase_us(Phase::FormatTranslation) > fwd_translation * 1.9);
    }

    #[test]
    fn edge_wise_cache_bloat_exceeds_napa() {
        let l = layer();
        let ew = EdgeWiseEdgeWeight::new(Arc::clone(&l), EdgeOp::ElemMul);
        let ew_stats = ew.stats(16, 4);
        let napa_stats = ew.na.stats(16, 4);
        assert!(
            ew_stats.cache_loaded_bytes > napa_stats.cache_loaded_bytes,
            "edge-wise {} !> feature-wise {}",
            ew_stats.cache_loaded_bytes,
            napa_stats.cache_loaded_bytes
        );
    }

    #[test]
    fn numerics_match_napa() {
        let l = layer();
        let x = Matrix::from_fn(9, 3, |r, c| (r * 3 + c) as f32);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let agg = EdgeWiseAggregate::new(Arc::clone(&l), Reduce::Mean);
        let napa = Pull::new(Arc::clone(&l), Reduce::Mean);
        assert!(
            agg.forward(&[&x], &mut ctx)
                .max_abs_diff(&napa.compute(&x, None))
                < 1e-6
        );
        let ew = EdgeWiseEdgeWeight::new(Arc::clone(&l), EdgeOp::ElemAdd);
        let napa_w = NeighborApply::new(l, EdgeOp::ElemAdd);
        assert!(
            ew.forward(&[&x], &mut ctx)
                .max_abs_diff(&napa_w.compute(&x))
                < 1e-6
        );
    }

    #[test]
    fn no_memory_bloat_for_graph_approach() {
        let l = layer();
        let x = Matrix::zeros(9, 4);
        let ew = EdgeWiseEdgeWeight::new(l, EdgeOp::ElemMul);
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let _ = ew.forward(&[&x], &mut ctx);
        assert_eq!(ctx.sim.phase_stats(Phase::Sparse2Dense).alloc_bytes, 0);
    }
}
