//! The baseline [`Framework`] implementations (§VI "Evaluation method").
//!
//! | Baseline   | Kernels                     | Preprocessing                 |
//! |------------|-----------------------------|-------------------------------|
//! | PyG        | DL-approach                 | serial, **single-threaded**   |
//! | PyG-MT     | DL-approach                 | serial, multi-threaded (§VI-B)|
//! | DGL        | Graph-approach (edge-wise)  | serial, multi-threaded        |
//! | GNNAdvisor | neighbor-group (+DL for `g`)| none (excluded from Fig 19)   |
//! | SALIENT    | DL-approach                 | serial, pinned, overlapped    |
//!
//! All of them schedule aggregation before combination statically; like the
//! paper's Fig 15 methodology, [`Baseline::comb_first`] lets the harness
//! also run the hand-programmed combination-first order and average the two.

use crate::dl::{DlAggregate, DlEdgeWeight};
use crate::gnnadvisor::NeighborGroupAggregate;
use crate::graph_approach::{EdgeWiseAggregate, EdgeWiseEdgeWeight};
use gt_core::config::ModelConfig;
use gt_core::data::GraphData;
use gt_core::framework::{BatchOutcome, BatchReport, Framework, FrameworkTraits};
use gt_core::prepro::{run_prepro, PreproResult};
use gt_core::scheduler::{schedule_prepro, PreproStrategy};
use gt_graph::VId;
use gt_sample::{LayerGraph, SamplerConfig};
use gt_sim::{Schedule, SimContext, SystemSpec};
use gt_tensor::dense::Matrix;
use gt_tensor::dfg::{Dfg, ExecCtx, Linear, Op, ParamStore, Relu};
use gt_tensor::init::xavier;
use gt_tensor::loss::softmax_cross_entropy;
use std::sync::Arc;

/// Which competing framework to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// PyTorch Geometric 1.7 (DL-approach, single-threaded sampling).
    Pyg,
    /// PyG with the paper's multi-thread-pool sampling retrofit (§VI-B).
    PygMt,
    /// Deep Graph Library 0.8.2 (Graph-approach).
    Dgl,
    /// GNNAdvisor (OSDI'21), renumbering preprocessing disabled.
    GnnAdvisor,
    /// SALIENT (MLSys'22): pinned-memory transfers + batch overlap.
    Salient,
    /// ROC (MLSys'20): CSR-resident Graph-approach — no translation before
    /// SpMM, but SDDMM needs COO, so edge weighting pays a CSR→COO
    /// translation; edge-wise scheduling throughout (§VII, Table III).
    Roc,
}

impl BaselineKind {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Pyg => "PyG",
            BaselineKind::PygMt => "PyG-MT",
            BaselineKind::Dgl => "DGL",
            BaselineKind::GnnAdvisor => "GNNAdvisor",
            BaselineKind::Salient => "SALIENT",
            BaselineKind::Roc => "ROC",
        }
    }
}

/// A baseline trainer emulating one competing framework.
pub struct Baseline {
    /// Which framework this is.
    pub kind: BaselineKind,
    /// The GNN being trained.
    pub model: ModelConfig,
    /// Modeled system.
    pub sys: SystemSpec,
    /// Sampling configuration (seed advances per batch).
    pub sampler: SamplerConfig,
    /// SGD learning rate.
    pub lr: f32,
    /// Run the hand-programmed combination-first order (for Fig 15's
    /// error bars). Only affects unweighted layers, where the reorder is
    /// mathematically valid.
    pub comb_first: bool,
    params: ParamStore,
    batches_run: usize,
    params_ready: bool,
}

impl Baseline {
    /// Build a baseline trainer.
    pub fn new(kind: BaselineKind, model: ModelConfig, sys: SystemSpec) -> Self {
        Baseline {
            kind,
            model,
            sys,
            sampler: SamplerConfig::default(),
            lr: 0.01,
            comb_first: false,
            params: ParamStore::new(),
            batches_run: 0,
            params_ready: false,
        }
    }

    fn ensure_params(&mut self, feature_dim: usize) {
        if self.params_ready {
            return;
        }
        let mut in_dim = feature_dim;
        for l in 0..self.model.layers {
            let out = self.model.layer_out_dim(l);
            self.params.register(
                self.model.weight_name(l),
                xavier(in_dim, out, 0xC0FFEE + l as u64),
            );
            self.params
                .register(self.model.bias_name(l), Matrix::zeros(1, out));
            in_dim = out;
        }
        self.params_ready = true;
    }

    /// This baseline's aggregation kernel for one layer.
    fn agg_op(&self, layer: Arc<LayerGraph>, weighted: bool) -> Box<dyn Op> {
        let agg = self.model.agg;
        match (self.kind, weighted) {
            (BaselineKind::Dgl, false) => Box::new(EdgeWiseAggregate::new(layer, agg)),
            (BaselineKind::Dgl, true) => Box::new(EdgeWiseAggregate::weighted(
                layer,
                agg,
                self.model.edge.unwrap().h,
            )),
            // ROC keeps CSR resident: SpMM needs no translation.
            (BaselineKind::Roc, false) => {
                Box::new(EdgeWiseAggregate::without_translation(layer, agg))
            }
            (BaselineKind::Roc, true) => Box::new(EdgeWiseAggregate::weighted_no_translation(
                layer,
                agg,
                self.model.edge.unwrap().h,
            )),
            (BaselineKind::GnnAdvisor, false) => Box::new(NeighborGroupAggregate::new(layer, agg)),
            // GNNAdvisor lacks weighted aggregation → DL fallback; all
            // PyG-family baselines use DL ops throughout.
            (_, false) => Box::new(DlAggregate::new(layer, agg)),
            (_, true) => Box::new(DlAggregate::weighted(
                layer,
                agg,
                self.model.edge.unwrap().h,
            )),
        }
    }

    /// This baseline's edge-weighting kernel.
    fn edge_op(&self, layer: Arc<LayerGraph>) -> Box<dyn Op> {
        let g = self.model.edge.expect("edge op requires edge weighting").g;
        match self.kind {
            BaselineKind::Dgl => Box::new(EdgeWiseEdgeWeight::new(layer, g)),
            // ROC translates CSR→COO before SDDMM (§VII: "it still needs to
            // perform format translation (CSR to COO) during SDDMM").
            BaselineKind::Roc => Box::new(EdgeWiseEdgeWeight::with_translation(layer, g)),
            // "GNNAdvisor … has no mechanism to compute edge weighting,
            // which cannot cover diverse GNN models" → DL-approach user code.
            _ => Box::new(DlEdgeWeight::new(layer, g)),
        }
    }

    fn build_dfg(&self, pr: &PreproResult) -> Dfg {
        let mut dfg = Dfg::new();
        let mut x = dfg.input(0);
        for l in 0..self.model.layers {
            let layer = Arc::clone(&pr.layers[l]);
            let weighted = self.model.edge.is_some();
            let w = self.model.weight_name(l);
            let b = self.model.bias_name(l);
            let out = if self.comb_first && !weighted {
                // Hand-programmed combination-first (exact for mean `f`).
                let lin = dfg.op(Linear::new(w, b), &[x]);
                dfg.op_boxed(self.agg_op(layer, false), &[lin])
            } else if weighted {
                let na = dfg.op_boxed(self.edge_op(Arc::clone(&layer)), &[x]);
                let agg = dfg.op_boxed(self.agg_op(layer, true), &[x, na]);
                dfg.op(Linear::new(w, b), &[agg])
            } else {
                let agg = dfg.op_boxed(self.agg_op(layer, false), &[x]);
                dfg.op(Linear::new(w, b), &[agg])
            };
            x = if l + 1 < self.model.layers {
                dfg.op(Relu, &[out])
            } else {
                out
            };
        }
        dfg.set_output(x);
        dfg
    }

    fn prepro_schedule(&self, pr: &PreproResult) -> Option<Schedule> {
        match self.kind {
            BaselineKind::GnnAdvisor => None, // "does not support preprocessing"
            BaselineKind::Pyg => {
                // Single-threaded sampling: same serialized plan on a
                // one-core host (>5× slower in the paper's preliminaries).
                let mut sys = self.sys.clone();
                sys.host.cores = 1;
                Some(schedule_prepro(&pr.work, &sys, PreproStrategy::Serial))
            }
            BaselineKind::PygMt | BaselineKind::Dgl | BaselineKind::Roc => {
                Some(schedule_prepro(&pr.work, &self.sys, PreproStrategy::Serial))
            }
            BaselineKind::Salient => Some(schedule_prepro(
                &pr.work,
                &self.sys,
                PreproStrategy::SerialPinned,
            )),
        }
    }
}

impl Framework for Baseline {
    fn name(&self) -> String {
        self.kind.label().to_string()
    }

    fn traits(&self) -> FrameworkTraits {
        match self.kind {
            BaselineKind::Pyg | BaselineKind::PygMt | BaselineKind::Salient => FrameworkTraits {
                initial_format: "CSR",
                memory_bloat: true,
                format_translation: false,
                cache_bloat: true,
                prepro_overhead: if self.kind == BaselineKind::Salient {
                    'D'
                } else {
                    'O'
                },
            },
            BaselineKind::Dgl => FrameworkTraits {
                initial_format: "COO",
                memory_bloat: false,
                format_translation: true,
                cache_bloat: true,
                prepro_overhead: 'D',
            },
            BaselineKind::Roc => FrameworkTraits {
                initial_format: "CSR",
                memory_bloat: false,
                format_translation: true,
                cache_bloat: true,
                prepro_overhead: 'O',
            },
            BaselineKind::GnnAdvisor => FrameworkTraits {
                initial_format: "CSR",
                memory_bloat: true,
                format_translation: false,
                cache_bloat: true,
                prepro_overhead: 'O',
            },
        }
    }

    fn overlaps_batches(&self) -> bool {
        // §VI-B: DGL overlaps sampling/lookup with GPU work; SALIENT's whole
        // point is overlap; PyG (either threading) does not.
        matches!(self.kind, BaselineKind::Dgl | BaselineKind::Salient)
    }

    fn train_batch(&mut self, data: &GraphData, batch: &[VId]) -> BatchReport {
        self.ensure_params(data.feature_dim());
        let mut cfg = self.sampler.clone();
        cfg.seed = cfg.seed.wrapping_add(self.batches_run as u64);
        let pr = run_prepro(data, batch, &cfg);

        let mut sim = SimContext::new(self.sys.gpu.clone());
        let _ = sim.memory.alloc(pr.features.bytes());
        for l in &pr.layers {
            let _ = sim.memory.alloc(l.structure_bytes());
        }

        let dfg = self.build_dfg(&pr);
        let labels = data.batch_labels(batch);
        self.params.zero_grads();
        let (loss, num_edges) = {
            let mut ctx = ExecCtx {
                sim: &mut sim,
                params: &mut self.params,
            };
            let values = dfg.forward(std::slice::from_ref(&pr.features), &mut ctx);
            let logits = values.get(dfg.output());
            let (loss, grad) = softmax_cross_entropy(logits, &labels);
            dfg.backward(&values, grad, &mut ctx);
            (loss, pr.layers.iter().map(|l| l.csr.num_edges()).sum())
        };
        self.params.sgd_step(self.lr);
        self.batches_run += 1;

        let prepro = self.prepro_schedule(&pr);
        let oom = sim.memory.oom().map(|e| e.to_string());
        BatchReport {
            loss,
            sim,
            prepro,
            num_nodes: pr.work.total_nodes as usize,
            num_edges,
            oom,
            outcome: BatchOutcome::Succeeded,
            telemetry: gt_telemetry::global(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_core::trainer::{GraphTensor, GtVariant};
    use gt_sim::Phase;

    fn data() -> GraphData {
        GraphData::synthetic(300, 3000, 16, 4, 3)
    }

    fn baseline(kind: BaselineKind, model: ModelConfig) -> Baseline {
        let mut b = Baseline::new(kind, model, SystemSpec::tiny());
        b.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 11,
            ..Default::default()
        };
        b
    }

    #[test]
    fn all_baselines_match_graphtensor_loss() {
        // Identical math on every framework: same batch → same loss.
        let d = data();
        let batch: Vec<VId> = (0..16).collect();
        let mut gt = GraphTensor::new(
            GtVariant::Base,
            ModelConfig::gcn(2, 16, 4),
            SystemSpec::tiny(),
        );
        gt.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 11,
            ..Default::default()
        };
        let want = gt.train_batch(&d, &batch).loss;
        for kind in [
            BaselineKind::Pyg,
            BaselineKind::PygMt,
            BaselineKind::Dgl,
            BaselineKind::GnnAdvisor,
            BaselineKind::Salient,
        ] {
            let mut b = baseline(kind, ModelConfig::gcn(2, 16, 4));
            let got = b.train_batch(&d, &batch).loss;
            assert!(
                (got - want).abs() < 1e-5,
                "{kind:?}: {got} vs GraphTensor {want}"
            );
        }
    }

    #[test]
    fn ngcf_losses_also_match() {
        let d = data();
        let batch: Vec<VId> = (0..12).collect();
        let mut gt = GraphTensor::new(
            GtVariant::Base,
            ModelConfig::ngcf(2, 16, 4),
            SystemSpec::tiny(),
        );
        gt.sampler = SamplerConfig {
            fanout: 4,
            layers: 2,
            seed: 11,
            ..Default::default()
        };
        let want = gt.train_batch(&d, &batch).loss;
        for kind in [
            BaselineKind::Pyg,
            BaselineKind::Dgl,
            BaselineKind::GnnAdvisor,
        ] {
            let mut b = baseline(kind, ModelConfig::ngcf(2, 16, 4));
            let got = b.train_batch(&d, &batch).loss;
            assert!((got - want).abs() < 1e-5, "{kind:?}: {got} vs {want}");
        }
    }

    #[test]
    fn dgl_pays_translation_pyg_pays_s2d() {
        let d = data();
        let batch: Vec<VId> = (0..16).collect();
        let mut dgl = baseline(BaselineKind::Dgl, ModelConfig::gcn(2, 16, 4));
        let r = dgl.train_batch(&d, &batch);
        assert!(r.phase_us(Phase::FormatTranslation) > 0.0);
        assert_eq!(r.phase_us(Phase::Sparse2Dense), 0.0);

        // Fused scatter: PyG's plain GCN aggregation no longer converts...
        let mut pyg = baseline(BaselineKind::Pyg, ModelConfig::gcn(2, 16, 4));
        let r = pyg.train_batch(&d, &batch);
        assert_eq!(r.phase_us(Phase::FormatTranslation), 0.0);
        assert_eq!(r.phase_us(Phase::Sparse2Dense), 0.0);
        // ...but NGCF's DL-op edge weighting cannot avoid it (§III).
        let mut pyg_n = baseline(BaselineKind::Pyg, ModelConfig::ngcf(2, 16, 4));
        let rn = pyg_n.train_batch(&d, &batch);
        assert!(rn.phase_us(Phase::Sparse2Dense) > 0.0);
    }

    #[test]
    fn pyg_single_thread_prepro_is_slowest() {
        let d = data();
        let batch: Vec<VId> = (0..32).collect();
        let mut pyg = baseline(BaselineKind::Pyg, ModelConfig::gcn(2, 16, 4));
        let mut mt = baseline(BaselineKind::PygMt, ModelConfig::gcn(2, 16, 4));
        // tiny host has 2 cores; paper's has 12. Use the paper testbed to
        // see the multi-threading gap.
        pyg.sys = SystemSpec::paper_testbed();
        mt.sys = SystemSpec::paper_testbed();
        let rp = pyg.train_batch(&d, &batch);
        let rm = mt.train_batch(&d, &batch);
        assert!(
            rp.prepro_us() > 1.5 * rm.prepro_us(),
            "PyG {} vs PyG-MT {}",
            rp.prepro_us(),
            rm.prepro_us()
        );
    }

    #[test]
    fn gnnadvisor_has_no_prepro_schedule() {
        let d = data();
        let mut adv = baseline(BaselineKind::GnnAdvisor, ModelConfig::gcn(2, 16, 4));
        let r = adv.train_batch(&d, &[0, 1, 2]);
        assert!(r.prepro.is_none());
        assert_eq!(r.prepro_us(), 0.0);
    }

    #[test]
    fn comb_first_is_numerically_equal_for_gcn() {
        let d = data();
        let batch: Vec<VId> = (0..16).collect();
        let mut af = baseline(BaselineKind::Pyg, ModelConfig::gcn(2, 16, 4));
        let mut cf = baseline(BaselineKind::Pyg, ModelConfig::gcn(2, 16, 4));
        cf.comb_first = true;
        let ra = af.train_batch(&d, &batch);
        let rc = cf.train_batch(&d, &batch);
        assert!(
            (ra.loss - rc.loss).abs() < 1e-4,
            "{} vs {}",
            ra.loss,
            rc.loss
        );
    }

    #[test]
    fn salient_overlaps_and_pins() {
        let d = data();
        let mut sal = baseline(BaselineKind::Salient, ModelConfig::gcn(2, 16, 4));
        let mut pygmt = baseline(BaselineKind::PygMt, ModelConfig::gcn(2, 16, 4));
        assert!(sal.overlaps_batches());
        assert!(!pygmt.overlaps_batches());
        let rs = sal.train_batch(&d, &(0..32).collect::<Vec<_>>());
        let rp = pygmt.train_batch(&d, &(0..32).collect::<Vec<_>>());
        assert!(rs.prepro_us() <= rp.prepro_us());
    }

    #[test]
    fn roc_translates_only_for_edge_weighting() {
        let d = data();
        let batch: Vec<VId> = (0..16).collect();
        // GCN (no edge weighting): ROC's resident CSR serves FWP SpMM, so
        // only the BWP CSC translation is charged — less than DGL's two.
        let mut roc = baseline(BaselineKind::Roc, ModelConfig::gcn(2, 16, 4));
        let mut dgl = baseline(BaselineKind::Dgl, ModelConfig::gcn(2, 16, 4));
        let rr = roc.train_batch(&d, &batch);
        let rd = dgl.train_batch(&d, &batch);
        let troc = rr.phase_us(Phase::FormatTranslation);
        let tdgl = rd.phase_us(Phase::FormatTranslation);
        assert!(troc > 0.0, "ROC still pays BWP translation");
        assert!(troc < tdgl, "ROC {troc} !< DGL {tdgl}");
        // NGCF: ROC pays the CSR→COO SDDMM translation the paper describes.
        let mut roc_n = baseline(BaselineKind::Roc, ModelConfig::ngcf(2, 16, 4));
        let rn = roc_n.train_batch(&d, &batch);
        assert!(rn.phase_us(Phase::FormatTranslation) > troc);
        // Numerics still agree with everyone else.
        let mut gt = baseline(BaselineKind::Pyg, ModelConfig::gcn(2, 16, 4));
        assert!((gt.train_batch(&d, &batch).loss - rr.loss).abs() < 1e-5);
    }

    #[test]
    fn table3_traits_match_paper() {
        let mk = |k| baseline(k, ModelConfig::gcn(2, 16, 4));
        let dgl = mk(BaselineKind::Dgl).traits();
        assert_eq!(dgl.initial_format, "COO");
        assert!(!dgl.memory_bloat && dgl.format_translation && dgl.cache_bloat);
        let pyg = mk(BaselineKind::Pyg).traits();
        assert_eq!(pyg.initial_format, "CSR");
        assert!(pyg.memory_bloat && !pyg.format_translation);
    }
}
