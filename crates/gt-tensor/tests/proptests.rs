//! Property-based tests on tensor kernels and autodiff invariants.

use gt_graph::convert::coo_to_csr;
use gt_graph::Coo;
use gt_tensor::dense::Matrix;
use gt_tensor::lstsq::lstsq;
use gt_tensor::sparse::{spmm, spmm_backward, Reduce};
use proptest::prelude::*;

/// Small random matrix strategy.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in matrix(4, 3), b in matrix(3, 5)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    /// matmul_transpose_b(A, B) = A · Bᵀ.
    #[test]
    fn matmul_tb_equivalence(a in matrix(4, 6), b in matrix(5, 6)) {
        let fast = a.matmul_transpose_b(&b);
        let slow = a.matmul(&b.transpose());
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    /// transpose_a_matmul(A, B) = Aᵀ · B.
    #[test]
    fn matmul_ta_equivalence(a in matrix(6, 4), b in matrix(6, 5)) {
        let fast = a.transpose_a_matmul(&b);
        let slow = a.transpose().matmul(&b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(a in matrix(3, 4), b in matrix(4, 3), c in matrix(4, 3)) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    /// SpMM with Sum equals the dense adjacency-matrix product.
    #[test]
    fn spmm_matches_dense_adjacency(
        es in prop::collection::vec((0u32..8, 0u32..8), 0..40),
        x in matrix(8, 3),
    ) {
        let coo = Coo::from_edges(8, &es);
        let (csr, _) = coo_to_csr(&coo);
        let sparse = spmm(&csr, &x, Reduce::Sum);
        // Dense S (dst × src) from the same edges.
        let mut s = Matrix::zeros(8, 8);
        for (src, dst) in coo.edges() {
            *s.at_mut(dst as usize, src as usize) += 1.0;
        }
        let dense = s.matmul(&x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-3);
    }

    /// SpMM backward is the transpose operator: <spmm(X), G> = <X, spmmᵀ(G)>.
    #[test]
    fn spmm_backward_is_adjoint(
        es in prop::collection::vec((0u32..6, 0u32..6), 0..25),
        x in matrix(6, 2),
        g in matrix(6, 2),
    ) {
        let coo = Coo::from_edges(6, &es);
        let (csr, _) = coo_to_csr(&coo);
        let y = spmm(&csr, &x, Reduce::Sum);
        let gx = spmm_backward(&csr, &g, 6, Reduce::Sum);
        let dot = |a: &Matrix, b: &Matrix| -> f64 {
            a.data().iter().zip(b.data()).map(|(&p, &q)| (p * q) as f64).sum()
        };
        prop_assert!((dot(&y, &g) - dot(&x, &gx)).abs() < 1e-2);
    }

    /// Least squares on a consistent system recovers the planted solution.
    #[test]
    fn lstsq_recovers_planted(
        coef in prop::collection::vec(-3.0f64..3.0, 2),
        xs in prop::collection::vec(-5.0f64..5.0, 8..20),
    ) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            // Design matrix [x, 1] with distinct x values enforced by index.
            let xi = x + i as f64 * 11.0;
            a.extend_from_slice(&[xi, 1.0]);
            b.push(coef[0] * xi + coef[1]);
        }
        let got = lstsq(&a, 2, &b).expect("full-rank system");
        prop_assert!((got[0] - coef[0]).abs() < 1e-6);
        prop_assert!((got[1] - coef[1]).abs() < 1e-6);
    }

    /// ReLU gradient is a mask: grad flows exactly where input > 0.
    #[test]
    fn relu_grad_mask(x in matrix(3, 5), g in matrix(3, 5)) {
        let gx = x.relu_grad(&g);
        for i in 0..x.len() {
            if x.data()[i] > 0.0 {
                prop_assert_eq!(gx.data()[i], g.data()[i]);
            } else {
                prop_assert_eq!(gx.data()[i], 0.0);
            }
        }
    }
}
