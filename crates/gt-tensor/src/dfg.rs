//! Dataflow graph with reverse-mode autodiff.
//!
//! GraphTensor constructs a TensorFlow dataflow graph (DFG) per execution
//! and its kernel orchestrator rewrites the graph *before* delegation to the
//! device — "it is prohibited to change the execution sequence of delegated
//! kernels at the GPU-side", so the Pull→MatMul pair is replaced by a
//! Cost-DKP node at the host side (§V-A, Fig 11c). This module provides the
//! graph, execution (forward + backward with gradient accumulation into a
//! [`ParamStore`]), shape inference for the cost model, and the
//! [`Dfg::fuse_pair`] rewrite primitive the orchestrator uses.
//!
//! Ops charge their own work to the [`gt_sim::SimContext`] carried by
//! [`ExecCtx`], so a DFG execution doubles as a measured GPU run.

use crate::dense::Matrix;
use crate::error::TensorError;
use gt_sim::{Phase, SimContext};
use std::collections::HashMap;

/// Identifies a node within one [`Dfg`].
pub type NodeId = usize;

/// Named persistent parameters (MLP weights/biases) living across batches,
/// with accumulated gradients and an SGD step.
#[derive(Debug, Default)]
pub struct ParamStore {
    values: HashMap<String, Matrix>,
    grads: HashMap<String, Matrix>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a parameter.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) {
        self.values.insert(name.into(), value);
    }

    /// Parameter by name; panics if missing (a model wiring bug). Use
    /// [`try_get`](Self::try_get) to receive the failure as a value.
    pub fn get(&self, name: &str) -> &Matrix {
        self.try_get(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parameter by name, reporting an unregistered name as a
    /// [`TensorError::MissingParam`].
    pub fn try_get(&self, name: &str) -> Result<&Matrix, TensorError> {
        self.values
            .get(name)
            .ok_or_else(|| TensorError::MissingParam {
                name: name.to_string(),
            })
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Accumulate a gradient for `name`.
    pub fn accumulate_grad(&mut self, name: &str, grad: &Matrix) {
        match self.grads.get_mut(name) {
            Some(g) => g.axpy(1.0, grad),
            None => {
                self.grads.insert(name.to_string(), grad.clone());
            }
        }
    }

    /// Accumulated gradient, if any backward pass produced one.
    pub fn grad(&self, name: &str) -> Option<&Matrix> {
        self.grads.get(name)
    }

    /// Clear all accumulated gradients.
    pub fn zero_grads(&mut self) {
        self.grads.clear();
    }

    /// Vanilla SGD: `w -= lr * g` for every parameter with a gradient.
    pub fn sgd_step(&mut self, lr: f32) {
        for (name, grad) in &self.grads {
            if let Some(value) = self.values.get_mut(name) {
                value.axpy(-lr, grad);
            }
        }
    }

    /// Apply `w += alpha · update` to one parameter (optimizer hook).
    pub fn apply_update(&mut self, name: &str, alpha: f32, update: &Matrix) {
        if let Some(value) = self.values.get_mut(name) {
            value.axpy(alpha, update);
        }
    }

    /// Scale one parameter's accumulated gradient (gradient clipping hook).
    pub fn scale_grad(&mut self, name: &str, scale: f32) {
        if let Some(g) = self.grads.get_mut(name) {
            g.scale(scale);
        }
    }

    /// Names of registered parameters (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(|s| s.as_str())
    }
}

/// Execution context threaded through every op: the device model accumulator
/// and the parameter store.
pub struct ExecCtx<'a> {
    /// Work/latency accounting for this run.
    pub sim: &'a mut SimContext,
    /// Persistent model parameters.
    pub params: &'a mut ParamStore,
}

/// A differentiable operation. Implementations charge their FLOPs/traffic to
/// `ctx.sim` themselves (they know their scheduling/cache behaviour — that is
/// the whole point of the paper).
pub trait Op: std::fmt::Debug {
    /// Display name, also used by the DKP pattern matcher.
    fn name(&self) -> &str;

    /// Compute the output from input values.
    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix;

    /// Given input values, the forward output, and ∂L/∂output, return
    /// ∂L/∂input for each input (`None` for inputs that need no gradient).
    /// Parameter gradients are accumulated into `ctx.params` directly.
    fn backward(
        &self,
        inputs: &[&Matrix],
        output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>>;

    /// Output shape from input shapes (for the DKP cost model's dry run).
    fn out_shape(&self, in_shapes: &[(usize, usize)], params: &ParamStore) -> (usize, usize);

    /// Names of the [`ParamStore`] entries this op reads, so executions can
    /// be validated before any kernel runs. Default: none.
    fn params(&self) -> Vec<&str> {
        Vec::new()
    }
}

enum NodeKind {
    /// External input, fed positionally at execution time.
    Input(usize),
    /// Operation node.
    Op(Box<dyn Op>),
}

impl std::fmt::Debug for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeKind::Input(i) => write!(f, "Input({i})"),
            NodeKind::Op(op) => write!(f, "Op({})", op.name()),
        }
    }
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    inputs: Vec<NodeId>,
}

/// All forward values of one DFG execution, kept for the backward pass.
#[derive(Debug)]
pub struct DfgValues {
    values: Vec<Option<Matrix>>,
}

impl DfgValues {
    /// Value of node `id` (panics if the node was dead/skipped).
    pub fn get(&self, id: NodeId) -> &Matrix {
        self.values[id].as_ref().expect("node not evaluated")
    }
}

/// The dataflow graph. Nodes are appended in topological order (an op may
/// only reference earlier nodes), which [`Dfg::op`] enforces.
#[derive(Debug, Default)]
pub struct Dfg {
    nodes: Vec<Node>,
    output: Option<NodeId>,
}

impl Dfg {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an external-input node reading execution input `slot`.
    pub fn input(&mut self, slot: usize) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::Input(slot),
            inputs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Add an op node consuming `inputs` (all must already exist).
    pub fn op(&mut self, op: impl Op + 'static, inputs: &[NodeId]) -> NodeId {
        self.op_boxed(Box::new(op), inputs)
    }

    /// Boxed variant of [`Dfg::op`].
    pub fn op_boxed(&mut self, op: Box<dyn Op>, inputs: &[NodeId]) -> NodeId {
        for &i in inputs {
            assert!(i < self.nodes.len(), "op references unknown node {i}");
        }
        self.nodes.push(Node {
            kind: NodeKind::Op(op),
            inputs: inputs.to_vec(),
        });
        self.nodes.len() - 1
    }

    /// Mark the node whose value is the graph's result.
    pub fn set_output(&mut self, id: NodeId) {
        assert!(id < self.nodes.len());
        self.output = Some(id);
    }

    /// The output node; panics if [`Dfg::set_output`] was never called.
    pub fn output(&self) -> NodeId {
        self.try_output().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The output node, reporting an unset output as a
    /// [`TensorError::OutputUnset`].
    pub fn try_output(&self) -> Result<NodeId, TensorError> {
        self.output.ok_or(TensorError::OutputUnset)
    }

    /// Number of nodes (including dead ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Name of node `id` ("input" for inputs) — used by pattern matching.
    pub fn node_name(&self, id: NodeId) -> &str {
        match &self.nodes[id].kind {
            NodeKind::Input(_) => "input",
            NodeKind::Op(op) => op.name(),
        }
    }

    /// Input edges of node `id`.
    pub fn node_inputs(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id].inputs
    }

    /// Ids of nodes that consume `id`'s value.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Liveness from the output node: dead nodes are skipped by execution.
    fn live(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let Some(out) = self.output else {
            return live;
        };
        let mut stack = vec![out];
        while let Some(id) = stack.pop() {
            if live[id] {
                continue;
            }
            live[id] = true;
            stack.extend_from_slice(&self.nodes[id].inputs);
        }
        live
    }

    /// Fuse the producer/consumer pair `(a, b)` into a single op placed at
    /// `b`'s slot (keeping downstream edges valid): the fused node's inputs
    /// are `a`'s inputs followed by `b`'s other inputs. `a` becomes dead.
    /// This is the rewrite primitive of Fig 11c (Pull + MatMul → Cost-DKP).
    ///
    /// Panics unless `b` consumes `a` and `a` has no other consumer.
    pub fn fuse_pair(&mut self, a: NodeId, b: NodeId, fused: Box<dyn Op>) {
        assert!(
            self.nodes[b].inputs.contains(&a),
            "{b} does not consume {a}"
        );
        assert_eq!(
            self.consumers(a),
            vec![b],
            "{a} has consumers besides {b}; cannot fuse"
        );
        assert!(self.output != Some(a), "cannot fuse away the output node");
        let mut inputs = self.nodes[a].inputs.clone();
        let b_others: Vec<NodeId> = self.nodes[b]
            .inputs
            .iter()
            .copied()
            .filter(|&i| i != a)
            .collect();
        inputs.extend(b_others);
        self.nodes[b] = Node {
            kind: NodeKind::Op(fused),
            inputs,
        };
    }

    /// Validate an execution without running it: every live input slot must
    /// be fed and every live op's parameters must be registered. Catching
    /// wiring bugs *before* any kernel runs means a failed validation
    /// leaves the sim accounting and parameter store untouched.
    pub fn validate(&self, num_inputs: usize, params: &ParamStore) -> Result<(), TensorError> {
        let live = self.live();
        for (id, node) in self.nodes.iter().enumerate() {
            if !live[id] {
                continue;
            }
            match &node.kind {
                NodeKind::Input(slot) => {
                    if *slot >= num_inputs {
                        return Err(TensorError::MissingInput { slot: *slot });
                    }
                }
                NodeKind::Op(op) => {
                    for name in op.params() {
                        if !params.contains(name) {
                            return Err(TensorError::MissingParam {
                                name: name.to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// [`Dfg::forward`] with up-front validation: wiring bugs come back as
    /// [`TensorError`]s instead of panics mid-execution.
    pub fn try_forward(
        &self,
        inputs: &[Matrix],
        ctx: &mut ExecCtx,
    ) -> Result<DfgValues, TensorError> {
        self.validate(inputs.len(), ctx.params)?;
        Ok(self.forward(inputs, ctx))
    }

    /// Run the forward pass. `inputs[slot]` feeds `Input(slot)` nodes.
    pub fn forward(&self, inputs: &[Matrix], ctx: &mut ExecCtx) -> DfgValues {
        let live = self.live();
        let mut values: Vec<Option<Matrix>> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            if !live[id] {
                values.push(None);
                continue;
            }
            let value = match &node.kind {
                NodeKind::Input(slot) => inputs
                    .get(*slot)
                    .unwrap_or_else(|| panic!("missing input slot {slot}"))
                    .clone(),
                NodeKind::Op(op) => {
                    let ins: Vec<&Matrix> = node
                        .inputs
                        .iter()
                        .map(|&i| values[i].as_ref().expect("input not evaluated"))
                        .collect();
                    let out = op.forward(&ins, ctx);
                    // Outputs land in device memory; count toward the peak.
                    let _ = ctx.sim.memory.alloc(out.bytes());
                    out
                }
            };
            values.push(Some(value));
        }
        DfgValues { values }
    }

    /// Run the backward pass from `out_grad` at the output node. Returns
    /// ∂L/∂input for every input slot (indexed by slot; `None` if unused).
    pub fn backward(
        &self,
        values: &DfgValues,
        out_grad: Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let out = self.output();
        let live = self.live();
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[out] = Some(out_grad);
        let max_slot = self
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Input(s) => Some(s),
                _ => None,
            })
            .max();
        let mut input_grads: Vec<Option<Matrix>> = vec![None; max_slot.map_or(0, |m| m + 1)];

        for id in (0..self.nodes.len()).rev() {
            if !live[id] {
                continue;
            }
            let Some(grad) = grads[id].take() else {
                continue;
            };
            match &self.nodes[id].kind {
                NodeKind::Input(slot) => match &mut input_grads[*slot] {
                    Some(g) => g.axpy(1.0, &grad),
                    g @ None => *g = Some(grad),
                },
                NodeKind::Op(op) => {
                    let ins: Vec<&Matrix> = self.nodes[id]
                        .inputs
                        .iter()
                        .map(|&i| values.values[i].as_ref().expect("missing value"))
                        .collect();
                    let in_grads = op.backward(&ins, values.get(id), &grad, ctx);
                    assert_eq!(
                        in_grads.len(),
                        ins.len(),
                        "{} returned wrong grad count",
                        op.name()
                    );
                    for (&src, g) in self.nodes[id].inputs.iter().zip(in_grads) {
                        if let Some(g) = g {
                            match &mut grads[src] {
                                Some(acc) => acc.axpy(1.0, &g),
                                slot @ None => *slot = Some(g),
                            }
                        }
                    }
                }
            }
        }
        input_grads
    }

    /// Shape-infer every live node given input-slot shapes.
    pub fn shapes(
        &self,
        input_shapes: &[(usize, usize)],
        params: &ParamStore,
    ) -> Vec<Option<(usize, usize)>> {
        let live = self.live();
        let mut shapes: Vec<Option<(usize, usize)>> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            if !live[id] {
                shapes.push(None);
                continue;
            }
            let s = match &node.kind {
                NodeKind::Input(slot) => input_shapes[*slot],
                NodeKind::Op(op) => {
                    let ins: Vec<(usize, usize)> = node
                        .inputs
                        .iter()
                        .map(|&i| shapes[i].expect("input shape missing"))
                        .collect();
                    op.out_shape(&ins, params)
                }
            };
            shapes.push(Some(s));
        }
        shapes
    }
}

/// Dense linear layer `X·W (+ b)` — the paper's `Apply` maps to TensorFlow's
/// `tf.matmul`/`tf.nn.bias_add`. Charged to [`Phase::Combination`].
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight parameter name in the [`ParamStore`] (shape f×h).
    pub weight: String,
    /// Optional bias parameter name (shape 1×h).
    pub bias: Option<String>,
}

impl Linear {
    /// Linear layer with bias.
    pub fn new(weight: impl Into<String>, bias: impl Into<String>) -> Self {
        Linear {
            weight: weight.into(),
            bias: Some(bias.into()),
        }
    }

    /// Linear layer without bias.
    pub fn no_bias(weight: impl Into<String>) -> Self {
        Linear {
            weight: weight.into(),
            bias: None,
        }
    }
}

impl Op for Linear {
    fn name(&self) -> &str {
        "matmul"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let x = inputs[0];
        let w = ctx.params.get(&self.weight).clone();
        let mut y = x.matmul(&w);
        if let Some(b) = &self.bias {
            y.add_row_vector(ctx.params.get(b).row(0));
        }
        let (n, f) = x.shape();
        let h = w.cols();
        ctx.sim.record_gpu(
            Phase::Combination,
            gt_sim::KernelStats {
                flops: 2 * (n * f * h) as u64,
                global_read_bytes: (x.bytes() + w.bytes()),
                global_write_bytes: y.bytes(),
                launches: if self.bias.is_some() { 2 } else { 1 },
                ..Default::default()
            },
        );
        y
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let x = inputs[0];
        let w = ctx.params.get(&self.weight).clone();
        // dX = dY · Wᵀ ; dW = Xᵀ · dY ; db = colsum(dY).
        let dx = grad.matmul_transpose_b(&w);
        let dw = x.transpose_a_matmul(grad);
        ctx.params.accumulate_grad(&self.weight, &dw);
        if let Some(b) = &self.bias {
            let db = Matrix::from_vec(1, grad.cols(), grad.column_sums());
            ctx.params.accumulate_grad(b, &db);
        }
        let (n, f) = x.shape();
        let h = w.cols();
        ctx.sim.record_gpu(
            Phase::Combination,
            gt_sim::KernelStats {
                flops: 4 * (n * f * h) as u64,
                global_read_bytes: x.bytes() + w.bytes() + 2 * grad.bytes(),
                global_write_bytes: dx.bytes() + dw.bytes(),
                launches: 2,
                ..Default::default()
            },
        );
        vec![Some(dx)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], params: &ParamStore) -> (usize, usize) {
        (in_shapes[0].0, params.get(&self.weight).cols())
    }

    fn params(&self) -> Vec<&str> {
        let mut names = vec![self.weight.as_str()];
        if let Some(b) = &self.bias {
            names.push(b.as_str());
        }
        names
    }
}

/// Elementwise ReLU, charged to [`Phase::Combination`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Op for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let y = inputs[0].relu();
        ctx.sim.record_gpu(
            Phase::Combination,
            gt_sim::KernelStats {
                flops: y.len() as u64,
                global_read_bytes: inputs[0].bytes(),
                global_write_bytes: y.bytes(),
                launches: 1,
                ..Default::default()
            },
        );
        y
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        let g = inputs[0].relu_grad(grad);
        ctx.sim.record_gpu(
            Phase::Combination,
            gt_sim::KernelStats {
                flops: g.len() as u64,
                global_read_bytes: inputs[0].bytes() + grad.bytes(),
                global_write_bytes: g.bytes(),
                launches: 1,
                ..Default::default()
            },
        );
        vec![Some(g)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        in_shapes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::xavier;
    use gt_sim::DeviceSpec;

    fn ctx_parts() -> (SimContext, ParamStore) {
        (SimContext::new(DeviceSpec::tiny()), ParamStore::new())
    }

    #[test]
    fn linear_forward_matches_manual() {
        let (mut sim, mut params) = ctx_parts();
        params.register("w", Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        params.register("b", Matrix::from_vec(1, 2, vec![10., 20.]));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let y = dfg.op(Linear::new("w", "b"), &[x]);
        dfg.set_output(y);
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let vals = dfg.forward(&[Matrix::from_vec(1, 2, vec![1., 1.])], &mut ctx);
        assert_eq!(vals.get(y).data(), &[14., 26.]);
        assert!(ctx.sim.phase_us(Phase::Combination) > 0.0);
    }

    #[test]
    fn mlp_gradients_match_finite_differences() {
        let (mut sim, mut params) = ctx_parts();
        params.register("w", xavier(3, 2, 5));
        params.register("b", Matrix::zeros(1, 2));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let lin = dfg.op(Linear::new("w", "b"), &[x]);
        let out = dfg.op(Relu, &[lin]);
        dfg.set_output(out);
        let xval = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7]);

        // Analytic input grad of L = sum(output).
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let vals = dfg.forward(std::slice::from_ref(&xval), &mut ctx);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let grads = dfg.backward(&vals, ones, &mut ctx);
        let gx = grads[0].as_ref().unwrap().clone();
        let gw = params.grad("w").unwrap().clone();

        let loss = |xv: &Matrix, ps: &mut ParamStore| {
            let mut sim = SimContext::new(DeviceSpec::tiny());
            let mut c = ExecCtx {
                sim: &mut sim,
                params: ps,
            };
            let v = dfg.forward(std::slice::from_ref(xv), &mut c);
            v.get(out).data().iter().sum::<f32>()
        };
        let eps = 1e-2f32;
        // Check input grads.
        for i in 0..xval.len() {
            let mut p = xval.clone();
            p.data_mut()[i] += eps;
            let mut m = xval.clone();
            m.data_mut()[i] -= eps;
            let num = (loss(&p, &mut params) - loss(&m, &mut params)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-2,
                "x[{i}]: {num} vs {}",
                gx.data()[i]
            );
        }
        // Check weight grads.
        let w0 = params.get("w").clone();
        for i in 0..w0.len() {
            let mut wp = w0.clone();
            wp.data_mut()[i] += eps;
            params.register("w", wp);
            let lp = loss(&xval, &mut params);
            let mut wm = w0.clone();
            wm.data_mut()[i] -= eps;
            params.register("w", wm);
            let lm = loss(&xval, &mut params);
            params.register("w", w0.clone());
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gw.data()[i]).abs() < 1e-2,
                "w[{i}]: {num} vs {}",
                gw.data()[i]
            );
        }
    }

    #[test]
    fn sgd_descends_on_quadratic() {
        // Minimize ‖x·W‖² over W; SGD must shrink the loss.
        let (mut sim, mut params) = ctx_parts();
        params.register("w", xavier(4, 3, 9));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let y = dfg.op(Linear::no_bias("w"), &[x]);
        dfg.set_output(y);
        let xval = xavier(8, 4, 11);
        let mut last = f32::INFINITY;
        for _ in 0..20 {
            params.zero_grads();
            let mut ctx = ExecCtx {
                sim: &mut sim,
                params: &mut params,
            };
            let vals = dfg.forward(std::slice::from_ref(&xval), &mut ctx);
            let outv = vals.get(y).clone();
            let loss: f32 = outv.data().iter().map(|&v| v * v).sum();
            let mut grad = outv;
            grad.scale(2.0);
            dfg.backward(&vals, grad, &mut ctx);
            params.sgd_step(0.05);
            assert!(loss <= last * 1.0001, "loss rose: {last} → {loss}");
            last = loss;
            sim.reset();
        }
        assert!(last < 0.5, "did not converge: {last}");
    }

    #[test]
    fn fuse_pair_rewrites_and_dead_code_skipped() {
        let (mut sim, mut params) = ctx_parts();
        params.register("w", Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let r = dfg.op(Relu, &[x]);
        let l = dfg.op(Linear::no_bias("w"), &[r]);
        dfg.set_output(l);
        assert_eq!(dfg.node_name(r), "relu");
        // Fuse relu→matmul into a single relu (dummy fusion for the test).
        dfg.fuse_pair(r, l, Box::new(Relu));
        assert_eq!(dfg.node_name(l), "relu");
        assert_eq!(dfg.node_inputs(l), &[x]);
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let vals = dfg.forward(&[Matrix::from_vec(1, 2, vec![-1., 2.])], &mut ctx);
        assert_eq!(vals.get(l).data(), &[0., 2.]);
        // Node r is dead now: exactly 2 live evaluations (input + fused).
        assert!(std::panic::catch_unwind(|| vals.get(r)).is_err());
    }

    #[test]
    #[should_panic]
    fn fuse_with_other_consumers_rejected() {
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let a = dfg.op(Relu, &[x]);
        let b = dfg.op(Relu, &[a]);
        let _c = dfg.op(Relu, &[a]); // second consumer of a
        dfg.set_output(b);
        dfg.fuse_pair(a, b, Box::new(Relu));
    }

    #[test]
    fn shape_inference() {
        let mut params = ParamStore::new();
        params.register("w", Matrix::zeros(8, 3));
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let l = dfg.op(Linear::no_bias("w"), &[x]);
        let r = dfg.op(Relu, &[l]);
        dfg.set_output(r);
        let shapes = dfg.shapes(&[(10, 8)], &params);
        assert_eq!(shapes[l], Some((10, 3)));
        assert_eq!(shapes[r], Some((10, 3)));
    }

    #[test]
    fn try_forward_reports_wiring_bugs_as_values() {
        use crate::error::TensorError;
        let (mut sim, mut params) = ctx_parts();
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let l = dfg.op(Linear::new("w", "b"), &[x]);
        dfg.set_output(l);
        assert_eq!(dfg.try_output(), Ok(l));
        assert_eq!(Dfg::new().try_output(), Err(TensorError::OutputUnset));

        // Unregistered weight: caught before any kernel runs.
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let xval = Matrix::from_vec(1, 2, vec![1., 1.]);
        assert_eq!(
            dfg.try_forward(std::slice::from_ref(&xval), &mut ctx).err(),
            Some(TensorError::MissingParam {
                name: "w".to_string()
            })
        );
        assert_eq!(
            ctx.params.try_get("w").err(),
            Some(TensorError::MissingParam {
                name: "w".to_string()
            })
        );

        // Missing input slot.
        ctx.params
            .register("w", Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]));
        ctx.params.register("b", Matrix::zeros(1, 2));
        assert_eq!(
            dfg.try_forward(&[], &mut ctx).err(),
            Some(TensorError::MissingInput { slot: 0 })
        );

        // Fully wired: matches the panicking path.
        let vals = dfg
            .try_forward(std::slice::from_ref(&xval), &mut ctx)
            .unwrap();
        assert_eq!(vals.get(l).data(), &[4., 6.]);
    }

    #[test]
    fn diamond_graph_accumulates_grads() {
        // y = relu(x) + relu(x): input grad must be the sum of both paths.
        #[derive(Debug)]
        struct AddOp;
        impl Op for AddOp {
            fn name(&self) -> &str {
                "add"
            }
            fn forward(&self, inputs: &[&Matrix], _ctx: &mut ExecCtx) -> Matrix {
                inputs[0].add(inputs[1])
            }
            fn backward(
                &self,
                _inputs: &[&Matrix],
                _output: &Matrix,
                grad: &Matrix,
                _ctx: &mut ExecCtx,
            ) -> Vec<Option<Matrix>> {
                vec![Some(grad.clone()), Some(grad.clone())]
            }
            fn out_shape(&self, s: &[(usize, usize)], _p: &ParamStore) -> (usize, usize) {
                s[0]
            }
        }
        let (mut sim, mut params) = ctx_parts();
        let mut dfg = Dfg::new();
        let x = dfg.input(0);
        let a = dfg.op(Relu, &[x]);
        let b = dfg.op(Relu, &[x]);
        let s = dfg.op(AddOp, &[a, b]);
        dfg.set_output(s);
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let xval = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let vals = dfg.forward(std::slice::from_ref(&xval), &mut ctx);
        let grads = dfg.backward(&vals, Matrix::from_vec(1, 2, vec![1.0, 1.0]), &mut ctx);
        assert_eq!(grads[0].as_ref().unwrap().data(), &[2.0, 2.0]);
    }
}
