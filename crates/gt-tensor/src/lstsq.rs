//! Ordinary least squares for the DKP cost model (Table I).
//!
//! DKP "fits the parameters by leveraging least-squares estimation with the
//! measured kernel execution time" during the first training epoch (§V-A).
//! The systems involved are tiny (a handful of coefficients over tens of
//! samples), so normal equations with Gaussian elimination and partial
//! pivoting are exact enough and dependency-free.

use crate::error::TensorError;

/// Solve `min ‖A·x − b‖²` for `x`, where `a` is row-major with `cols`
/// columns. Returns `None` when the normal matrix is singular (e.g. fewer
/// independent samples than coefficients).
pub fn lstsq(a: &[f64], cols: usize, b: &[f64]) -> Option<Vec<f64>> {
    try_lstsq(a, cols, b).ok()
}

/// [`lstsq`] with a typed error: a rank-deficient system comes back as
/// [`TensorError::SingularSystem`] so callers can distinguish "no unique
/// fit" from other failures when reporting degradation decisions.
pub fn try_lstsq(a: &[f64], cols: usize, b: &[f64]) -> Result<Vec<f64>, TensorError> {
    assert!(cols > 0, "need at least one coefficient");
    assert_eq!(a.len() % cols, 0, "a must be rows×cols");
    let rows = a.len() / cols;
    assert_eq!(rows, b.len(), "one observation per row");

    // Normal equations: (AᵀA) x = Aᵀ b.
    let mut ata = vec![0.0f64; cols * cols];
    let mut atb = vec![0.0f64; cols];
    for r in 0..rows {
        let row = &a[r * cols..(r + 1) * cols];
        for i in 0..cols {
            atb[i] += row[i] * b[r];
            for j in 0..cols {
                ata[i * cols + j] += row[i] * row[j];
            }
        }
    }
    solve_dense(&mut ata, &mut atb, cols).ok_or(TensorError::SingularSystem)
}

/// Gaussian elimination with partial pivoting on an n×n system (in place).
fn solve_dense(m: &mut [f64], rhs: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        // Pivot selection.
        let pivot = (col..n)
            .max_by(|&i, &j| m[i * n + col].abs().total_cmp(&m[j * n + col].abs()))
            .unwrap();
        if m[pivot * n + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        let inv = 1.0 / m[col * n + col];
        for r in col + 1..n {
            let factor = m[r * n + col] * inv;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[r * n + k] -= factor * m[col * n + k];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = rhs[col];
        for k in col + 1..n {
            acc -= m[col * n + k] * x[k];
        }
        x[col] = acc / m[col * n + col];
    }
    Some(x)
}

/// Mean absolute percentage error of predictions vs observations — the
/// paper reports 12.5% for its fitted DKP model.
pub fn mape(predicted: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(predicted.len(), observed.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &o) in predicted.iter().zip(observed) {
        if o.abs() > 1e-12 {
            sum += ((p - o) / o).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_line() {
        // y = 2x + 3 with design matrix [x, 1].
        let a = vec![1.0, 1.0, 2.0, 1.0, 3.0, 1.0];
        let b = vec![5.0, 7.0, 9.0];
        let x = lstsq(&a, 2, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overdetermined_noisy_fit() {
        // y ≈ 4x with noise; least squares recovers ≈4.
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let a: Vec<f64> = xs.clone();
        let b: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 4.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let x = lstsq(&a, 1, &b).unwrap();
        assert!((x[0] - 4.0).abs() < 0.02, "got {}", x[0]);
    }

    #[test]
    fn singular_system_detected() {
        // Two identical columns → rank-deficient.
        let a = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert!(lstsq(&a, 2, &[1.0, 2.0, 3.0]).is_none());
        assert_eq!(
            try_lstsq(&a, 2, &[1.0, 2.0, 3.0]),
            Err(TensorError::SingularSystem)
        );
    }

    #[test]
    fn multi_coefficient_plane() {
        // z = 1.5x − 2y + 0.5
        let pts = [
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (2.0, 3.0),
            (5.0, 1.0),
            (4.0, 4.0),
        ];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for &(x, y) in &pts {
            a.extend_from_slice(&[x, y, 1.0]);
            b.push(1.5 * x - 2.0 * y + 0.5);
        }
        let c = lstsq(&a, 3, &b).unwrap();
        assert!((c[0] - 1.5).abs() < 1e-9);
        assert!((c[1] + 2.0).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mape_basics() {
        assert!((mape(&[110.0], &[100.0]) - 0.1).abs() < 1e-12);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0); // zero observations skipped
    }
}
