//! Training losses: softmax cross-entropy (node classification — GCN's
//! typical head) and mean squared error (link-score regression — NGCF-style
//! recommendation heads).

use crate::dense::Matrix;

/// Softmax cross-entropy over logits with integer class labels.
/// Returns `(mean loss, gradient w.r.t. logits)`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let n = logits.rows();
    let c = logits.cols();
    let mut grad = Matrix::zeros(n, c);
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        assert!(label < c, "label {label} out of range for {c} classes");
        let p_label = exps[label] / sum;
        loss += -(p_label.max(1e-30)).ln();
        let grow = grad.row_mut(r);
        for (k, g) in grow.iter_mut().enumerate() {
            let p = exps[k] / sum;
            *g = (p - if k == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (loss / n as f32, grad)
}

/// Mean squared error against a dense target. Returns `(loss, grad)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.len() as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for i in 0..pred.len() {
        let d = pred.data()[i] - target.data()[i];
        loss += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Classification accuracy of argmax(logits) against labels.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(r, &l)| {
            let row = logits.row(r);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            argmax == l
        })
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xent_prefers_correct_class() {
        let good = Matrix::from_vec(1, 3, vec![10.0, 0.0, 0.0]);
        let bad = Matrix::from_vec(1, 3, vec![0.0, 10.0, 0.0]);
        let (lg, _) = softmax_cross_entropy(&good, &[0]);
        let (lb, _) = softmax_cross_entropy(&bad, &[0]);
        assert!(lg < 0.01);
        assert!(lb > 5.0);
    }

    #[test]
    fn xent_gradient_numerical_check() {
        let logits = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&p, &labels);
            let (lm, _) = softmax_cross_entropy(&m, &labels);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "elem {i}: {num} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn xent_grad_rows_sum_to_zero() {
        let logits = Matrix::from_vec(1, 4, vec![0.3, 0.1, -0.5, 2.0]);
        let (_, g) = softmax_cross_entropy(&logits, &[1]);
        let s: f32 = g.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn mse_zero_at_target() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Matrix::from_vec(1, 1, vec![3.0]);
        let target = Matrix::from_vec(1, 1, vec![1.0]);
        let (l, g) = mse(&pred, &target);
        assert_eq!(l, 4.0);
        assert_eq!(g.data()[0], 4.0); // 2(3-1)/1
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Matrix::from_vec(2, 2, vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }
}
