//! Additional DFG ops: seeded dropout and residual addition.
//!
//! Both are standard members of the GNN design space the paper's NAPA
//! primitives target ("315K different designs... cover most architectural
//! designs of GNNs" — the You et al. design space includes dropout and
//! skip connections).

use crate::dense::Matrix;
use crate::dfg::{ExecCtx, Op, ParamStore};
use gt_sim::{KernelStats, Phase};
use parking_lot::Mutex;

/// Inverted dropout with a deterministic per-execution mask. The mask is
/// derived from (`seed`, call counter), so training remains reproducible
/// while masks still differ across batches.
#[derive(Debug)]
pub struct Dropout {
    /// Probability of zeroing an element (0 ≤ p < 1).
    pub p: f32,
    /// Mask seed.
    pub seed: u64,
    /// When false, dropout is the identity (inference mode).
    pub training: bool,
    calls: Mutex<u64>,
    /// Mask stash for the backward pass.
    mask: Mutex<Option<Vec<bool>>>,
}

impl Dropout {
    /// New dropout op.
    pub fn new(p: f32, seed: u64, training: bool) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Dropout {
            p,
            seed,
            training,
            calls: Mutex::new(0),
            mask: Mutex::new(None),
        }
    }

    fn make_mask(&self, len: usize) -> Vec<bool> {
        let mut call = self.calls.lock();
        *call += 1;
        let mut state = self.seed ^ (*call).wrapping_mul(0x9E3779B97F4A7C15);
        let threshold = (self.p as f64 * u32::MAX as f64) as u32;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as u32) >= threshold
            })
            .collect()
    }
}

impl Op for Dropout {
    fn name(&self) -> &str {
        "dropout"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let x = inputs[0];
        if !self.training || self.p == 0.0 {
            return x.clone();
        }
        let mask = self.make_mask(x.len());
        let scale = 1.0 / (1.0 - self.p);
        let mut y = x.clone();
        for (v, &keep) in y.data_mut().iter_mut().zip(&mask) {
            *v = if keep { *v * scale } else { 0.0 };
        }
        *self.mask.lock() = Some(mask);
        ctx.sim.record_gpu(
            Phase::Combination,
            KernelStats {
                flops: x.len() as u64,
                global_read_bytes: x.bytes(),
                global_write_bytes: x.bytes(),
                launches: 1,
                ..Default::default()
            },
        );
        y
    }

    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        _ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        if !self.training || self.p == 0.0 {
            return vec![Some(grad.clone())];
        }
        let mask = self
            .mask
            .lock()
            .take()
            .expect("dropout backward without forward");
        let scale = 1.0 / (1.0 - self.p);
        let mut g = grad.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&mask) {
            *v = if keep { *v * scale } else { 0.0 };
        }
        let _ = inputs;
        vec![Some(g)]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        in_shapes[0]
    }
}

/// Elementwise residual addition of two equal-shaped inputs (skip
/// connection, e.g. JK-Net-style designs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ResidualAdd;

impl Op for ResidualAdd {
    fn name(&self) -> &str {
        "residual_add"
    }

    fn forward(&self, inputs: &[&Matrix], ctx: &mut ExecCtx) -> Matrix {
        let y = inputs[0].add(inputs[1]);
        ctx.sim.record_gpu(
            Phase::Combination,
            KernelStats {
                flops: y.len() as u64,
                global_read_bytes: 2 * y.bytes(),
                global_write_bytes: y.bytes(),
                launches: 1,
                ..Default::default()
            },
        );
        y
    }

    fn backward(
        &self,
        _inputs: &[&Matrix],
        _output: &Matrix,
        grad: &Matrix,
        _ctx: &mut ExecCtx,
    ) -> Vec<Option<Matrix>> {
        vec![Some(grad.clone()), Some(grad.clone())]
    }

    fn out_shape(&self, in_shapes: &[(usize, usize)], _params: &ParamStore) -> (usize, usize) {
        assert_eq!(in_shapes[0], in_shapes[1], "residual shapes must match");
        in_shapes[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_sim::{DeviceSpec, SimContext};

    fn ctx_parts() -> (SimContext, ParamStore) {
        (SimContext::new(DeviceSpec::tiny()), ParamStore::new())
    }

    #[test]
    fn dropout_zeroes_and_scales() {
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let d = Dropout::new(0.5, 7, true);
        let x = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let y = d.forward(&[&x], &mut ctx);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let kept = y.data().iter().filter(|&&v| (v - 2.0).abs() < 1e-6).count();
        assert_eq!(zeros + kept, 1000);
        assert!(
            (300..700).contains(&zeros),
            "zeroed {zeros} of 1000 at p=0.5"
        );
        // Expectation preserved: mean ≈ 1.
        let mean: f32 = y.data().iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let d = Dropout::new(0.3, 9, true);
        let x = Matrix::from_vec(1, 200, vec![1.0; 200]);
        let y = d.forward(&[&x], &mut ctx);
        let g = d.backward(
            &[&x],
            &y,
            &Matrix::from_vec(1, 200, vec![1.0; 200]),
            &mut ctx,
        );
        let gx = g[0].as_ref().unwrap();
        // Gradient flows exactly where the forward kept the value.
        for i in 0..200 {
            assert_eq!(y.data()[i] == 0.0, gx.data()[i] == 0.0, "elem {i}");
        }
    }

    #[test]
    fn inference_mode_is_identity() {
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let d = Dropout::new(0.9, 1, false);
        let x = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(d.forward(&[&x], &mut ctx), x);
    }

    #[test]
    fn residual_add_grads_fan_out() {
        let (mut sim, mut params) = ctx_parts();
        let mut ctx = ExecCtx {
            sim: &mut sim,
            params: &mut params,
        };
        let r = ResidualAdd;
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(1, 2, vec![10., 20.]);
        let y = r.forward(&[&a, &b], &mut ctx);
        assert_eq!(y.data(), &[11., 22.]);
        let g = r.backward(
            &[&a, &b],
            &y,
            &Matrix::from_vec(1, 2, vec![1., 1.]),
            &mut ctx,
        );
        assert_eq!(g[0].as_ref().unwrap().data(), &[1., 1.]);
        assert_eq!(g[1].as_ref().unwrap().data(), &[1., 1.]);
    }
}
