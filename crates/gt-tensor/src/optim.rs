//! Optimizers beyond plain SGD: momentum and Adam, plus gradient clipping.
//!
//! The paper trains with stochastic gradient descent (§II-A); Adam is the
//! de-facto optimizer of the GNN models it evaluates (GCN, NGCF both use
//! Adam in their original papers), so the library ships it as an extension.

use crate::dense::Matrix;
use crate::dfg::ParamStore;
use std::collections::HashMap;

/// Optimizer state and update rule over a [`ParamStore`].
#[derive(Debug)]
pub enum Optimizer {
    /// `w -= lr · g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// `v = µ·v + g; w -= lr · v`.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum factor (typically 0.9).
        momentum: f32,
        /// Per-parameter velocity.
        velocity: HashMap<String, Matrix>,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (0.9).
        beta1: f32,
        /// Second-moment decay (0.999).
        beta2: f32,
        /// Numerical floor.
        eps: f32,
        /// Step counter.
        t: u64,
        /// First moments.
        m: HashMap<String, Matrix>,
        /// Second moments.
        v: HashMap<String, Matrix>,
    },
}

impl Optimizer {
    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// SGD with momentum.
    pub fn momentum(lr: f32, momentum: f32) -> Self {
        Optimizer::Momentum {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }

    /// Adam with the canonical hyperparameters.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Apply one update step using the gradients accumulated in `params`.
    pub fn step(&mut self, params: &mut ParamStore) {
        let names: Vec<String> = params.names().map(|s| s.to_string()).collect();
        match self {
            Optimizer::Sgd { lr } => params.sgd_step(*lr),
            Optimizer::Momentum {
                lr,
                momentum,
                velocity,
            } => {
                for name in names {
                    let Some(grad) = params.grad(&name).cloned() else {
                        continue;
                    };
                    let vel = velocity
                        .entry(name.clone())
                        .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    vel.scale(*momentum);
                    vel.axpy(1.0, &grad);
                    let update = vel.clone();
                    params.apply_update(&name, -*lr, &update);
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                *t += 1;
                let bc1 = 1.0 - beta1.powi(*t as i32);
                let bc2 = 1.0 - beta2.powi(*t as i32);
                for name in names {
                    let Some(grad) = params.grad(&name).cloned() else {
                        continue;
                    };
                    let mk = m
                        .entry(name.clone())
                        .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    let vk = v
                        .entry(name.clone())
                        .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                    for i in 0..grad.len() {
                        let g = grad.data()[i];
                        let md = &mut mk.data_mut()[i];
                        *md = *beta1 * *md + (1.0 - *beta1) * g;
                        let vd = &mut vk.data_mut()[i];
                        *vd = *beta2 * *vd + (1.0 - *beta2) * g * g;
                    }
                    let mut update = Matrix::zeros(grad.rows(), grad.cols());
                    for i in 0..grad.len() {
                        let mhat = mk.data()[i] / bc1;
                        let vhat = vk.data()[i] / bc2;
                        update.data_mut()[i] = mhat / (vhat.sqrt() + *eps);
                    }
                    params.apply_update(&name, -*lr, &update);
                }
            }
        }
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut ParamStore, max_norm: f32) -> f32 {
    let names: Vec<String> = params.names().map(|s| s.to_string()).collect();
    let mut sq = 0.0f32;
    for name in &names {
        if let Some(g) = params.grad(name) {
            sq += g.data().iter().map(|&x| x * x).sum::<f32>();
        }
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for name in &names {
            params.scale_grad(name, scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::xavier;

    /// Minimize ‖W‖² with each optimizer; all must decrease the norm.
    fn shrink_with(mut opt: Optimizer, steps: usize) -> (f32, f32) {
        let mut params = ParamStore::new();
        params.register("w", xavier(6, 6, 3));
        let initial = params.get("w").frobenius();
        for _ in 0..steps {
            params.zero_grads();
            let mut grad = params.get("w").clone();
            grad.scale(2.0); // d/dW ‖W‖² = 2W
            params.accumulate_grad("w", &grad);
            opt.step(&mut params);
        }
        (initial, params.get("w").frobenius())
    }

    #[test]
    fn all_optimizers_descend() {
        for opt in [
            Optimizer::sgd(0.05),
            Optimizer::momentum(0.02, 0.9),
            Optimizer::adam(0.05),
        ] {
            let (before, after) = shrink_with(opt, 50);
            assert!(after < before * 0.5, "{before} → {after}");
        }
    }

    #[test]
    fn momentum_matches_hand_computed_sequence() {
        // v = µ·v + g; w -= lr·v with µ = 0.9, lr = 0.1, w₀ = 1:
        //   g₁ =  1.00 → v =  1.00          → w = 1.00 - 0.100 = 0.900
        //   g₂ =  0.50 → v =  0.90 + 0.50   → w = 0.90 - 0.140 = 0.760
        //   g₃ = -0.25 → v =  1.26 - 0.25   → w = 0.76 - 0.101 = 0.659
        let mut params = ParamStore::new();
        params.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        let mut opt = Optimizer::momentum(0.1, 0.9);
        let grads = [1.0f32, 0.5, -0.25];
        let expected = [0.9f32, 0.76, 0.659];
        for (g, want) in grads.iter().zip(expected) {
            params.zero_grads();
            params.accumulate_grad("w", &Matrix::from_vec(1, 1, vec![*g]));
            opt.step(&mut params);
            let got = params.get("w").at(0, 0);
            assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
        }
    }

    #[test]
    fn adam_handles_sparse_gradient_scales() {
        // Adam normalizes per-coordinate: a huge-gradient coordinate moves
        // about as fast as a small-gradient one.
        let mut params = ParamStore::new();
        params.register("w", Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        let mut opt = Optimizer::adam(0.1);
        params.zero_grads();
        params.accumulate_grad("w", &Matrix::from_vec(1, 2, vec![1000.0, 0.001]));
        opt.step(&mut params);
        let w = params.get("w");
        let d0 = (1.0 - w.at(0, 0)).abs();
        let d1 = (1.0 - w.at(0, 1)).abs();
        assert!(
            (d0 - d1).abs() < 0.05,
            "updates {d0} vs {d1} not normalized"
        );
    }

    #[test]
    fn clipping_bounds_norm() {
        let mut params = ParamStore::new();
        params.register("w", Matrix::zeros(2, 2));
        params.accumulate_grad("w", &Matrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]));
        let pre = clip_grad_norm(&mut params, 1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = params.grad("w").unwrap();
        let post: f32 = g.data().iter().map(|&x| x * x).sum::<f32>();
        assert!((post.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clipping_is_noop_under_threshold() {
        let mut params = ParamStore::new();
        params.register("w", Matrix::zeros(1, 2));
        params.accumulate_grad("w", &Matrix::from_vec(1, 2, vec![0.3, 0.4]));
        clip_grad_norm(&mut params, 1.0);
        assert_eq!(params.grad("w").unwrap().data(), &[0.3, 0.4]);
    }
}
