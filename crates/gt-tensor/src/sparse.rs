//! Reference sparse kernels: SpMM and SDDMM (§III, Fig 5b).
//!
//! Graph-approach frameworks express aggregation as SpMM (`S · D`) and edge
//! weighting as SDDMM (`(D · Dᵀ) ∘ S`). These straightforward sequential
//! implementations are the *correctness oracles*: the scheduling-aware
//! kernels in `gt-core` (feature-wise NAPA) and `gt-baselines` (edge-wise)
//! must produce numerically identical results while charging different
//! cache/memory behaviour.

use crate::dense::Matrix;
use gt_graph::{Csr, VId};

/// How aggregated neighbor embeddings are reduced (`f` in §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduce {
    /// Plain sum.
    Sum,
    /// Arithmetic mean (GCN's aggregation).
    Mean,
    /// Elementwise max (GraphSAGE-pool style).
    Max,
}

/// SpMM: for every destination `d`, reduce the embeddings of its sources.
/// `features` is indexed by source id; the output row `d` is
/// `reduce_{s ∈ srcs(d)} features[s]`. Destinations without sources get 0.
pub fn spmm(csr: &Csr, features: &Matrix, reduce: Reduce) -> Matrix {
    let f = features.cols();
    let mut out = Matrix::zeros(csr.num_vertices(), f);
    for (d, srcs) in csr.iter() {
        if srcs.is_empty() {
            continue;
        }
        let orow = out.row_mut(d as usize);
        match reduce {
            Reduce::Sum | Reduce::Mean => {
                for &s in srcs {
                    for (o, &x) in orow.iter_mut().zip(features.row(s as usize)) {
                        *o += x;
                    }
                }
                if reduce == Reduce::Mean {
                    let inv = 1.0 / srcs.len() as f32;
                    for o in orow.iter_mut() {
                        *o *= inv;
                    }
                }
            }
            Reduce::Max => {
                orow.copy_from_slice(features.row(srcs[0] as usize));
                for &s in &srcs[1..] {
                    for (o, &x) in orow.iter_mut().zip(features.row(s as usize)) {
                        *o = o.max(x);
                    }
                }
            }
        }
    }
    out
}

/// Weighted SpMM: like [`spmm`] but each (dst, src) edge's contribution is
/// first scaled elementwise by its weight vector from `edge_weights`
/// (row = edge id in CSR order). This is `f(h(X))` with `h` = weighted sum.
pub fn spmm_weighted(
    csr: &Csr,
    features: &Matrix,
    edge_weights: &Matrix,
    reduce: Reduce,
) -> Matrix {
    assert_eq!(
        edge_weights.rows(),
        csr.num_edges(),
        "one weight row per edge"
    );
    assert_eq!(edge_weights.cols(), features.cols(), "weight dim mismatch");
    let f = features.cols();
    let mut out = Matrix::zeros(csr.num_vertices(), f);
    for (d, srcs) in csr.iter() {
        if srcs.is_empty() {
            continue;
        }
        let range = csr.edge_range(d);
        let orow = out.row_mut(d as usize);
        for (&s, e) in srcs.iter().zip(range) {
            let w = edge_weights.row(e);
            for ((o, &x), &wk) in orow.iter_mut().zip(features.row(s as usize)).zip(w) {
                *o += x * wk;
            }
        }
        if reduce == Reduce::Mean {
            let inv = 1.0 / srcs.len() as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
    }
    out
}

/// The per-edge weight function `g` of SDDMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Elementwise product of src and dst embeddings (NGCF's similarity).
    ElemMul,
    /// Elementwise sum.
    ElemAdd,
    /// Scalar dot product broadcast across the feature dim (GAT-like score).
    Dot,
}

/// SDDMM: compute `g(src_embedding, dst_embedding)` for every edge of the
/// graph, in CSR edge order. Output row `e` is the weight vector of edge `e`.
pub fn sddmm(csr: &Csr, features: &Matrix, op: EdgeOp) -> Matrix {
    let f = features.cols();
    let mut out = Matrix::zeros(csr.num_edges(), f);
    for (d, srcs) in csr.iter() {
        let drow: Vec<f32> = features.row(d as usize).to_vec();
        for (&s, e) in srcs.iter().zip(csr.edge_range(d)) {
            let srow = features.row(s as usize);
            let orow = out.row_mut(e);
            match op {
                EdgeOp::ElemMul => {
                    for ((o, &a), &b) in orow.iter_mut().zip(srow).zip(&drow) {
                        *o = a * b;
                    }
                }
                EdgeOp::ElemAdd => {
                    for ((o, &a), &b) in orow.iter_mut().zip(srow).zip(&drow) {
                        *o = a + b;
                    }
                }
                EdgeOp::Dot => {
                    let dot: f32 = srow.iter().zip(&drow).map(|(&a, &b)| a * b).sum();
                    for o in orow.iter_mut() {
                        *o = dot;
                    }
                }
            }
        }
    }
    out
}

/// Scatter gradients from destinations back to sources: the backward of
/// [`spmm`]. `grad` is indexed by dst; returns per-src accumulated grads
/// (`f'` of Fig 3b). For `Mean`, each edge contribution is scaled by
/// 1/deg(dst) to match the forward.
pub fn spmm_backward(csr: &Csr, grad: &Matrix, num_srcs: usize, reduce: Reduce) -> Matrix {
    assert!(
        reduce != Reduce::Max,
        "max backward needs forward argmax state"
    );
    let f = grad.cols();
    let mut out = Matrix::zeros(num_srcs, f);
    for (d, srcs) in csr.iter() {
        if srcs.is_empty() {
            continue;
        }
        let scale = match reduce {
            Reduce::Mean => 1.0 / srcs.len() as f32,
            _ => 1.0,
        };
        let grow: Vec<f32> = grad.row(d as usize).iter().map(|&g| g * scale).collect();
        for &s in srcs {
            for (o, &g) in out.row_mut(s as usize).iter_mut().zip(&grow) {
                *o += g;
            }
        }
    }
    out
}

/// Number of sources referenced by a CSR (max src id + 1), handy when the
/// src id space differs from the dst space (per-layer subgraphs).
pub fn max_src_plus_one(csr: &Csr) -> usize {
    csr.srcs
        .iter()
        .copied()
        .max()
        .map_or(0, |v: VId| v as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::convert::coo_to_csr;
    use gt_graph::Coo;

    /// dst 0 ← {1, 2}; dst 1 ← {2}; dst 2 ← {}.
    fn small() -> Csr {
        let coo = Coo::from_edges(3, &[(1, 0), (2, 0), (2, 1)]);
        coo_to_csr(&coo).0
    }

    fn feats() -> Matrix {
        Matrix::from_vec(3, 2, vec![1., 10., 2., 20., 3., 30.])
    }

    #[test]
    fn spmm_sum_and_mean() {
        let csr = small();
        let s = spmm(&csr, &feats(), Reduce::Sum);
        assert_eq!(s.row(0), &[5., 50.]);
        assert_eq!(s.row(1), &[3., 30.]);
        assert_eq!(s.row(2), &[0., 0.]);
        let m = spmm(&csr, &feats(), Reduce::Mean);
        assert_eq!(m.row(0), &[2.5, 25.]);
        assert_eq!(m.row(1), &[3., 30.]);
    }

    #[test]
    fn spmm_max() {
        let csr = small();
        let m = spmm(&csr, &feats(), Reduce::Max);
        assert_eq!(m.row(0), &[3., 30.]);
    }

    #[test]
    fn sddmm_elem_mul() {
        let csr = small();
        let w = sddmm(&csr, &feats(), EdgeOp::ElemMul);
        assert_eq!(w.rows(), 3);
        // Edge order: (dst 0: srcs 1,2), (dst 1: src 2).
        assert_eq!(w.row(0), &[2. * 1., 20. * 10.]);
        assert_eq!(w.row(1), &[3. * 1., 30. * 10.]);
        assert_eq!(w.row(2), &[3. * 2., 30. * 20.]);
    }

    #[test]
    fn sddmm_dot_broadcasts() {
        let csr = small();
        let w = sddmm(&csr, &feats(), EdgeOp::Dot);
        let expect = 2. * 1. + 20. * 10.;
        assert_eq!(w.row(0), &[expect, expect]);
    }

    #[test]
    fn weighted_spmm_matches_manual() {
        let csr = small();
        let ones = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let plain = spmm(&csr, &feats(), Reduce::Sum);
        let weighted = spmm_weighted(&csr, &feats(), &ones, Reduce::Sum);
        assert!(plain.max_abs_diff(&weighted) < 1e-6);
    }

    #[test]
    fn spmm_backward_transposes() {
        let csr = small();
        let grad = Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 0., 0.]);
        let g = spmm_backward(&csr, &grad, 3, Reduce::Sum);
        // src 1 feeds dst 0 → grad 1; src 2 feeds dsts 0 and 1 → 1 + 2 = 3.
        assert_eq!(g.row(1), &[1., 1.]);
        assert_eq!(g.row(2), &[3., 3.]);
        assert_eq!(g.row(0), &[0., 0.]);
    }

    #[test]
    fn mean_backward_scales_by_degree() {
        let csr = small();
        let grad = Matrix::from_vec(3, 2, vec![2., 2., 4., 4., 0., 0.]);
        let g = spmm_backward(&csr, &grad, 3, Reduce::Mean);
        // dst 0 has degree 2 → each src gets 2/2 = 1; dst 1 degree 1 → 4.
        assert_eq!(g.row(1), &[1., 1.]);
        assert_eq!(g.row(2), &[1. + 4., 1. + 4.]);
    }

    #[test]
    fn finite_difference_check_spmm_mean() {
        // Numerical gradient of L = Σ spmm(X) against spmm_backward.
        let csr = small();
        let x = feats();
        let eps = 1e-2f32;
        let loss = |m: &Matrix| spmm(&csr, m, Reduce::Mean).data().iter().sum::<f32>();
        let ones = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let analytic = spmm_backward(&csr, &ones, 3, Reduce::Mean);
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 1e-2,
                "elem {i}: numeric {num} vs analytic {}",
                analytic.data()[i]
            );
        }
    }
}
