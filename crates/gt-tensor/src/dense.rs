//! Row-major dense `f32` matrices and the dense kernels behind *combination*
//! (MLP: matmul, bias add, ReLU — the `tf.matmul`/`tf.nn.*` primitives the
//! paper's `Apply` delegates to, §IV-B).
//!
//! The matmul is cache-blocked and parallel over row bands on the
//! deterministic `gt_par` pool (each output row has one writer, so results
//! are bit-identical at any `GT_THREADS`); on a multi-core host it scales
//! near-linearly, and its FLOP/traffic profile is what [`crate::dfg`]
//! charges to the device model.

use gt_par::ThreadPool;

/// Output rows per matmul pool chunk (fixed, independent of worker count).
const MM_ROW_CHUNK: usize = 32;

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a buffer of length `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Build by evaluating `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Immutable element access.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        // Parallelize over output row bands; ikj loop order streams rhs rows.
        ThreadPool::global().for_each_chunk_mut(
            "dense.matmul",
            &mut out.data,
            MM_ROW_CHUNK * n,
            |ci, band| {
                let row_base = ci * MM_ROW_CHUNK;
                for (r, orow) in band.chunks_mut(n).enumerate() {
                    let i = row_base + r;
                    let arow = &self.data[i * k..(i + 1) * k];
                    for (kk, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let brow = &rhs.data[kk * n..(kk + 1) * n];
                        for (o, &b) in orow.iter_mut().zip(brow) {
                            *o += a * b;
                        }
                    }
                }
            },
        );
        out
    }

    /// `self · rhsᵀ`.
    pub fn matmul_transpose_b(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_tb shape mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        ThreadPool::global().for_each_chunk_mut(
            "dense.matmul_tb",
            &mut out.data,
            MM_ROW_CHUNK * n,
            |ci, band| {
                let row_base = ci * MM_ROW_CHUNK;
                for (r, orow) in band.chunks_mut(n).enumerate() {
                    let i = row_base + r;
                    let arow = &self.data[i * k..(i + 1) * k];
                    for (j, o) in orow.iter_mut().enumerate() {
                        let brow = &rhs.data[j * k..(j + 1) * k];
                        *o = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                    }
                }
            },
        );
        out
    }

    /// `selfᵀ · rhs`.
    pub fn transpose_a_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_ta shape mismatch");
        let (k, m, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let arow = &self.data[kk * m..(kk + 1) * m];
            let brow = &rhs.data[kk * n..(kk + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Add a row vector (bias) to every row.
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (the bias gradient: ∂L/∂b = Σ_rows ∂L/∂y).
    pub fn column_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Elementwise ReLU.
    pub fn relu(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x.max(0.0)).collect(),
        }
    }

    /// ReLU backward: grad where the *pre-activation* input was positive.
    pub fn relu_grad(&self, grad_out: &Matrix) -> Matrix {
        assert_eq!(self.shape(), grad_out.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&grad_out.data)
                .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                .collect(),
        }
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Max absolute difference to another matrix (test helper).
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!(self.shape(), rhs.shape());
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> Matrix {
        Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.])
    }

    fn m32() -> Matrix {
        Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.])
    }

    #[test]
    fn matmul_known_values() {
        let c = m23().matmul(&m32());
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit() {
        let a = m23();
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_transpose_b(&b);
        assert!(expect.max_abs_diff(&got) < 1e-5);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit() {
        let a = m32(); // 3x2 → aᵀ is 2x3
        let b = Matrix::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        let expect = a.transpose().matmul(&b);
        let got = a.transpose_a_matmul(&b);
        assert!(expect.max_abs_diff(&got) < 1e-5);
    }

    #[test]
    fn transpose_involution() {
        let a = m23();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_and_column_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_vector(&[1., 2., 3.]);
        assert_eq!(a.row(0), &[1., 2., 3.]);
        assert_eq!(a.column_sums(), vec![2., 4., 6.]);
    }

    #[test]
    fn relu_and_grad() {
        let x = Matrix::from_vec(1, 4, vec![-1., 0., 2., -3.]);
        assert_eq!(x.relu().data(), &[0., 0., 2., 0.]);
        let g = Matrix::from_vec(1, 4, vec![10., 10., 10., 10.]);
        assert_eq!(x.relu_grad(&g).data(), &[0., 0., 10., 0.]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(a.hadamard(&b).data(), &[4., 10., 18.]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[9., 12., 15.]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((a.frobenius() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_rejected() {
        m23().matmul(&m23());
    }
}
