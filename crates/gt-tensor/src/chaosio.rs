//! Fault-injectable file IO for the durability layer.
//!
//! The chaos campaigns (docs/fault_model.md §Chaos campaigns) need storage
//! faults — torn writes, short reads, ENOSPC, single-bit flips — injected
//! *below* the checkpoint and journal code, so the recovery protocol is
//! exercised against exactly the byte-level residue a failing disk leaves,
//! not against a hand-simulated approximation of it. This module is that
//! injection point: [`checkpoint::save_file`](crate::checkpoint::save_file)
//! stages its bytes through [`write_file`], journal appends go through
//! [`append`], and recovery reads come back through [`read_file`].
//!
//! With nothing armed (the production state), every function is the plain
//! `std::fs` operation — same syscalls, same fsync placement. A campaign
//! arms faults per batch with [`arm`]; each armed fault is consumed by the
//! first matching operation and [`ArmGuard`] disarms whatever is left when
//! the batch ends, so faults can never leak across batches or tests
//! (state is thread-local: parallel `cargo test` threads are isolated).
//!
//! Fault semantics, chosen to mirror the real failure they model:
//!
//! * **torn write** — a prefix of the bytes persists, then the write
//!   errors: `write(2)` interrupted by a power cut;
//! * **ENOSPC** — nothing persists, the write errors: a full disk;
//! * **bit flip** — one bit of the in-flight buffer is flipped and the
//!   write *succeeds*: firmware that lied about what it wrote. Detection
//!   belongs to the CRC framing of the artifact, not to this layer;
//! * **short read** — the read returns fewer bytes than the file holds:
//!   an interrupted syscall or flaky network filesystem. Callers must
//!   validate lengths against file metadata, never trust EOF.

use gt_sim::{IoFault, IoTarget};
use std::cell::RefCell;
use std::io::{self, Write};
use std::path::Path;

thread_local! {
    static ARMED: RefCell<Vec<(IoTarget, IoFault)>> = const { RefCell::new(Vec::new()) };
}

/// Arm `faults` for this thread, replacing whatever was armed before.
/// Each fault fires on the first matching operation and is consumed; the
/// returned guard disarms the remainder when dropped.
#[must_use = "dropping the guard immediately disarms the faults"]
pub fn arm(faults: &[(IoTarget, IoFault)]) -> ArmGuard {
    ARMED.with(|a| *a.borrow_mut() = faults.to_vec());
    ArmGuard { _private: () }
}

/// Disarm every pending fault on this thread.
pub fn disarm() {
    ARMED.with(|a| a.borrow_mut().clear());
}

/// Number of armed faults not yet consumed (this thread).
pub fn armed_len() -> usize {
    ARMED.with(|a| a.borrow().len())
}

/// RAII scope for [`arm`]: disarms all remaining faults on drop.
pub struct ArmGuard {
    _private: (),
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Consume the first armed fault for `target` that applies to a write
/// (torn write, ENOSPC, bit flip — short reads stay armed).
fn take_write(target: IoTarget) -> Option<IoFault> {
    take_matching(target, |f| !matches!(f, IoFault::ShortRead))
}

/// Consume the first armed [`IoFault::ShortRead`] for `target`.
fn take_read(target: IoTarget) -> Option<IoFault> {
    take_matching(target, |f| matches!(f, IoFault::ShortRead))
}

fn take_matching(target: IoTarget, applies: impl Fn(&IoFault) -> bool) -> Option<IoFault> {
    ARMED.with(|a| {
        let mut armed = a.borrow_mut();
        let idx = armed.iter().position(|(t, f)| *t == target && applies(f))?;
        Some(armed.remove(idx).1)
    })
}

fn injected(detail: String) -> io::Error {
    io::Error::other(detail)
}

fn flip_bit(bytes: &[u8], bit: u32) -> Vec<u8> {
    let mut copy = bytes.to_vec();
    if !copy.is_empty() {
        let pos = bit as usize % (copy.len() * 8);
        copy[pos / 8] ^= 1 << (pos % 8);
    }
    copy
}

/// Create `path` and durably write `bytes` to it (write_all + fsync),
/// honoring any armed write fault for `target`.
pub fn write_file(target: IoTarget, path: &Path, bytes: &[u8]) -> io::Result<()> {
    match take_write(target) {
        None => {
            let mut f = std::fs::File::create(path)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            Ok(())
        }
        Some(IoFault::TornWrite) => {
            let mut f = std::fs::File::create(path)?;
            f.write_all(&bytes[..bytes.len() / 2])?;
            f.sync_all()?;
            Err(injected(format!(
                "injected torn write: {} of {} bytes persisted to {}",
                bytes.len() / 2,
                bytes.len(),
                path.display()
            )))
        }
        Some(IoFault::Enospc) => {
            // A full disk can still create the (empty) inode.
            let f = std::fs::File::create(path)?;
            f.sync_all()?;
            Err(injected(format!(
                "injected ENOSPC: no space left writing {}",
                path.display()
            )))
        }
        Some(IoFault::BitFlip { bit }) => {
            let corrupt = flip_bit(bytes, bit);
            let mut f = std::fs::File::create(path)?;
            f.write_all(&corrupt)?;
            f.sync_all()?;
            Ok(()) // the firmware lied: success reported, bytes wrong
        }
        Some(IoFault::ShortRead) => unreachable!("take_write filters read faults"),
    }
}

/// Durably append `bytes` to an open `file` (write_all + fdatasync),
/// honoring any armed write fault for `target`.
pub fn append(target: IoTarget, file: &mut std::fs::File, bytes: &[u8]) -> io::Result<()> {
    match take_write(target) {
        None => {
            file.write_all(bytes)?;
            file.sync_data()?;
            Ok(())
        }
        Some(IoFault::TornWrite) => {
            file.write_all(&bytes[..bytes.len() / 2])?;
            file.sync_data()?;
            Err(injected(format!(
                "injected torn write: {} of {} bytes appended",
                bytes.len() / 2,
                bytes.len()
            )))
        }
        Some(IoFault::Enospc) => Err(injected(
            "injected ENOSPC: no space left for append".to_string(),
        )),
        Some(IoFault::BitFlip { bit }) => {
            let corrupt = flip_bit(bytes, bit);
            file.write_all(&corrupt)?;
            file.sync_data()?;
            Ok(())
        }
        Some(IoFault::ShortRead) => unreachable!("take_write filters read faults"),
    }
}

/// Read all of `path`, honoring an armed [`IoFault::ShortRead`] for
/// `target` by returning only a prefix of the file. Callers must compare
/// the returned length against file metadata (see
/// [`checkpoint::load_file`](crate::checkpoint::load_file)): a short read
/// is transient — retryable — and must never be misread as truncation.
pub fn read_file(target: IoTarget, path: &Path) -> io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    match take_read(target) {
        None => Ok(bytes),
        Some(_) => {
            let keep = bytes.len() / 2;
            Ok(bytes[..keep].to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gt_chaosio_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn identity_when_disarmed() {
        let path = tmp("identity.bin");
        write_file(IoTarget::Checkpoint, &path, b"hello world").unwrap();
        assert_eq!(
            read_file(IoTarget::Checkpoint, &path).unwrap(),
            b"hello world"
        );
        assert_eq!(armed_len(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_persists_half_and_errors() {
        let path = tmp("torn.bin");
        let _g = arm(&[(IoTarget::Checkpoint, IoFault::TornWrite)]);
        let err = write_file(IoTarget::Checkpoint, &path, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        // Consumed: the retry goes through clean.
        write_file(IoTarget::Checkpoint, &path, b"0123456789").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123456789");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enospc_persists_nothing_and_errors() {
        let path = tmp("enospc.bin");
        let _g = arm(&[(IoTarget::Journal, IoFault::Enospc)]);
        let err = write_file(IoTarget::Journal, &path, b"payload").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_reports_success_with_wrong_bytes() {
        let path = tmp("flip.bin");
        let _g = arm(&[(IoTarget::Checkpoint, IoFault::BitFlip { bit: 1 })]);
        write_file(IoTarget::Checkpoint, &path, &[0u8, 0, 0]).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![2u8, 0, 0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_read_returns_prefix_once() {
        let path = tmp("short.bin");
        write_file(IoTarget::Journal, &path, b"0123456789").unwrap();
        let _g = arm(&[(IoTarget::Journal, IoFault::ShortRead)]);
        assert_eq!(read_file(IoTarget::Journal, &path).unwrap(), b"01234");
        assert_eq!(read_file(IoTarget::Journal, &path).unwrap(), b"0123456789");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn faults_only_fire_on_their_target() {
        let path = tmp("target.bin");
        let _g = arm(&[(IoTarget::Journal, IoFault::TornWrite)]);
        // Checkpoint write unaffected; the journal fault stays armed.
        write_file(IoTarget::Checkpoint, &path, b"safe").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"safe");
        assert_eq!(armed_len(), 1);
        // Reads never consume write faults.
        assert_eq!(read_file(IoTarget::Journal, &path).unwrap(), b"safe");
        assert_eq!(armed_len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm(&[
                (IoTarget::Journal, IoFault::Enospc),
                (IoTarget::Checkpoint, IoFault::TornWrite),
            ]);
            assert_eq!(armed_len(), 2);
        }
        assert_eq!(armed_len(), 0);
    }

    #[test]
    fn append_faults_mirror_write_faults() {
        let path = tmp("append.bin");
        std::fs::write(&path, b"base").unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();

        let _g = arm(&[(IoTarget::Journal, IoFault::TornWrite)]);
        let err = append(IoTarget::Journal, &mut f, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"base01234");
        drop(_g);

        let _g = arm(&[(IoTarget::Journal, IoFault::Enospc)]);
        append(IoTarget::Journal, &mut f, b"XYZ").unwrap_err();
        assert_eq!(std::fs::read(&path).unwrap(), b"base01234");
        drop(_g);

        append(IoTarget::Journal, &mut f, b"!").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"base01234!");
        std::fs::remove_file(&path).ok();
    }
}
