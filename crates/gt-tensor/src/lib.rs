//! Tensor substrate for GraphTensor-RS.
//!
//! GraphTensor is built on TensorFlow (§VI); this crate supplies the pieces
//! of that substrate the framework actually uses:
//!
//! * [`dense`] — row-major `f32` matrices and the MLP kernels (`matmul`,
//!   bias, ReLU) that implement *combination*;
//! * [`sparse`] — reference SpMM/SDDMM used as correctness oracles for the
//!   scheduling-aware kernels in `gt-core` and `gt-baselines`;
//! * [`dfg`] — a dataflow graph with reverse-mode autodiff, the structure
//!   the kernel orchestrator's Dynamic Kernel Placement rewrites (§V-A);
//! * [`lstsq`] — the least-squares estimator DKP uses to fit its cost-model
//!   coefficients (Table I);
//! * [`loss`], [`init`], [`optim`] — losses, weight initialization, and
//!   optimizers (SGD / momentum / Adam, gradient clipping).

pub mod chaosio;
pub mod checkpoint;
pub mod crc32;
pub mod dense;
pub mod dfg;
pub mod error;
pub mod init;
pub mod loss;
pub mod lstsq;
pub mod ops_extra;
pub mod optim;
pub mod sparse;

pub use dense::Matrix;
pub use dfg::{Dfg, ExecCtx, NodeId, Op, ParamStore};
pub use error::TensorError;
pub use lstsq::{lstsq, try_lstsq};
