//! Hand-rolled CRC-32 (IEEE 802.3, the zlib/PNG polynomial).
//!
//! The durability layer (checkpoints, the serving outcome journal) needs a
//! cheap integrity check over on-disk bytes, and the offline build cannot
//! vendor a crc crate (DESIGN.md §6). This is the standard reflected
//! table-driven implementation; the table is built in a `const` context so
//! there is no runtime initialization to race on.

const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC-32 state. Feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state (all-ones preload, per the standard).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The digest of everything absorbed so far (state is not consumed).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"split across several updates";
        let mut c = Crc32::new();
        for chunk in data.chunks(5) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn any_single_byte_change_is_detected() {
        let data: Vec<u8> = (0u8..=255).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut copy = data.clone();
            copy[i] ^= 0x01;
            assert_ne!(crc32(&copy), base, "flip at {i} undetected");
        }
    }
}
