//! Weight initialization.

use crate::dense::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialization: U(−√(6/(fan_in+fan_out)), +√(…)).
pub fn xavier(rows: usize, cols: usize, seed: u64) -> Matrix {
    let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
}

/// Zero-initialized bias vector.
pub fn zeros_bias(dim: usize) -> Vec<f32> {
    vec![0.0; dim]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let a = xavier(64, 32, 1);
        let b = xavier(64, 32, 1);
        assert_eq!(a, b);
        let bound = (6.0 / 96.0f64).sqrt() as f32;
        assert!(a.data().iter().all(|&x| x.abs() <= bound));
        // Values actually vary.
        assert!(a.data().iter().any(|&x| x != a.data()[0]));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(xavier(8, 8, 1), xavier(8, 8, 2));
    }
}
