//! Parameter checkpointing: save/load a [`ParamStore`] to a compact,
//! self-describing binary format (magic + version + per-tensor records +
//! CRC-32 trailer).
//!
//! Enables the standard train → checkpoint → resume/serve workflow a
//! downstream user of the framework expects, and is hardened for the
//! durability layer (docs/fault_model.md §Durability & recovery):
//!
//! * every file ends in a CRC-32 of all preceding bytes, so torn writes
//!   and bit rot are detected instead of loading garbage parameters;
//! * [`save_file`] writes to a temporary sibling, fsyncs, and atomically
//!   renames over the destination — a crash mid-save never destroys the
//!   last good checkpoint;
//! * [`load`] parses from a buffer bounded by the *actual* input size and
//!   validates every claimed length against the bytes remaining, so a
//!   corrupt header cannot drive a multi-gigabyte allocation;
//! * all failure paths return a typed [`TensorError`] (`Corrupt` / `Io`) —
//!   never a panic.

use crate::chaosio;
use crate::crc32::crc32;
use crate::dense::Matrix;
use crate::dfg::ParamStore;
use crate::error::TensorError;
use gt_sim::IoTarget;
use std::io::{Read, Write};
use std::path::Path;

/// Format magic. `02` adds the CRC-32 trailer; `01` files (no trailer) are
/// rejected with a descriptive error rather than silently trusted.
const MAGIC: &[u8; 8] = b"GTCKPT02";
const V1_MAGIC: &[u8; 8] = b"GTCKPT01";

/// Serialized byte image of a store: magic, count, sorted tensor records,
/// CRC-32 trailer. Deterministic for a given store.
pub fn to_bytes(params: &ParamStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut names: Vec<&str> = params.names().collect();
    names.sort_unstable(); // deterministic file layout
    out.extend_from_slice(&(names.len() as u64).to_le_bytes());
    for name in names {
        let m = params.get(name);
        let bytes = name.as_bytes();
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
        out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
        for &v in m.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Fingerprint of a serialized image: the CRC-32 its trailer carries
/// (recomputed from the body, so a torn or tampered trailer changes it).
///
/// Never fingerprint a self-checksummed image by CRC-ing **all** of it:
/// the CRC-32 of any message with its own little-endian CRC appended is
/// the constant residue `0x2144DF1C`, identical for every valid image.
pub fn image_crc(bytes: &[u8]) -> u32 {
    crc32(&bytes[..bytes.len().saturating_sub(4)])
}

/// Serialize every parameter to `writer`.
pub fn save<W: Write>(params: &ParamStore, mut writer: W) -> Result<(), TensorError> {
    writer.write_all(&to_bytes(params))?;
    Ok(())
}

/// Parse a checkpoint image. Every length field is validated against the
/// bytes remaining before any allocation sized from it.
pub fn from_bytes(bytes: &[u8]) -> Result<ParamStore, TensorError> {
    let corrupt = |detail: &str| TensorError::Corrupt {
        detail: detail.to_string(),
    };
    if bytes.len() < MAGIC.len() + 4 {
        return Err(corrupt("file shorter than magic + checksum"));
    }
    if &bytes[..8] == V1_MAGIC {
        return Err(corrupt(
            "legacy GTCKPT01 file (no checksum trailer); re-save with this version",
        ));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("not a GraphTensor checkpoint (bad magic)"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4-byte slice"));
    let computed = crc32(body);
    if stored != computed {
        return Err(TensorError::Corrupt {
            detail: format!("CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"),
        });
    }

    struct Cursor<'a>(&'a [u8]);
    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TensorError> {
            if self.0.len() < n {
                return Err(TensorError::Corrupt {
                    detail: format!("truncated {what}: need {n} bytes, {} remain", self.0.len()),
                });
            }
            let (head, rest) = self.0.split_at(n);
            self.0 = rest;
            Ok(head)
        }
        fn remaining(&self) -> usize {
            self.0.len()
        }
    }
    let mut cur = Cursor(&body[8..]);

    let count = u64::from_le_bytes(cur.take(8, "tensor count")?.try_into().expect("8"));
    // Each record is at least 4 (name len) + 16 (dims) + 4 (one f32? no —
    // zero-element tensors are legal) = 20 bytes; bound the claimed count
    // so a lying header cannot spin a huge loop.
    if count > (body.len() as u64) / 20 {
        return Err(TensorError::Corrupt {
            detail: format!(
                "implausible tensor count {count} for {}-byte file",
                body.len()
            ),
        });
    }
    let mut params = ParamStore::new();
    for i in 0..count {
        let name_len =
            u32::from_le_bytes(cur.take(4, "name length")?.try_into().expect("4")) as usize;
        if name_len > 4096 || name_len > cur.remaining() {
            return Err(TensorError::Corrupt {
                detail: format!("tensor {i}: unreasonable name length {name_len}"),
            });
        }
        let name = std::str::from_utf8(cur.take(name_len, "name")?)
            .map_err(|e| TensorError::Corrupt {
                detail: format!("tensor {i}: non-UTF-8 name: {e}"),
            })?
            .to_string();
        let rows = u64::from_le_bytes(cur.take(8, "rows")?.try_into().expect("8")) as usize;
        let cols = u64::from_le_bytes(cur.take(8, "cols")?.try_into().expect("8")) as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("rows*cols overflows"))?;
        let byte_len = len
            .checked_mul(4)
            .ok_or_else(|| corrupt("tensor byte size overflows"))?;
        // The allocation-bomb guard: the claimed payload must fit in the
        // bytes that are actually present.
        if byte_len > cur.remaining() {
            return Err(TensorError::Corrupt {
                detail: format!(
                    "tensor {name:?} claims {rows}x{cols} ({byte_len} bytes) but only {} remain",
                    cur.remaining()
                ),
            });
        }
        let raw = cur.take(byte_len, "tensor data")?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        params.register(name, Matrix::from_vec(rows, cols, data));
    }
    if cur.remaining() != 0 {
        return Err(TensorError::Corrupt {
            detail: format!("{} trailing bytes after last tensor", cur.remaining()),
        });
    }
    Ok(params)
}

/// Deserialize parameters from `reader` into a fresh store. The stream is
/// read to its real end first, so allocations are bounded by the actual
/// input size — a corrupt header claiming huge dimensions fails validation
/// instead of reserving memory.
pub fn load<R: Read>(mut reader: R) -> Result<ParamStore, TensorError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    from_bytes(&bytes)
}

/// Save to `path` crash-consistently: write a temporary sibling, fsync it,
/// rename it over `path`, then fsync the directory. A crash at any point
/// leaves either the old checkpoint or the new one — never a torn file at
/// `path` (the stray `.tmp` sibling is ignored by loads and overwritten by
/// the next save).
pub fn save_file(params: &ParamStore, path: impl AsRef<Path>) -> Result<(), TensorError> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    let bytes = to_bytes(params);
    // Staged through the chaos IO shim: identity in production, and the
    // injection point for torn-write/ENOSPC/bit-flip campaigns. A fault
    // here damages only the staging sibling — `path` is untouched.
    chaosio::write_file(IoTarget::Checkpoint, &tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself requires the directory entry to hit
    // disk; best-effort (some filesystems refuse to open directories).
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The temporary sibling `save_file` stages into before the atomic rename.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Delete a stale staging sibling of `path`, if one exists — the residue a
/// crash between tmp-write and atomic rename leaves behind forever
/// otherwise. Returns true when a file was removed. Called on durable
/// startup and recovery; always safe, since a live `save_file` holds the
/// sibling only within one call on the same thread.
pub fn remove_stale_tmp(path: impl AsRef<Path>) -> bool {
    std::fs::remove_file(tmp_path(path.as_ref())).is_ok()
}

/// Load from a file path.
///
/// Reads through the chaos IO shim and validates the byte count against
/// file metadata, so a short read (interrupted syscall, flaky NFS) comes
/// back as a retryable [`TensorError::Io`] — never misdiagnosed as a
/// truncated/corrupt checkpoint.
pub fn load_file(path: impl AsRef<Path>) -> Result<ParamStore, TensorError> {
    let path = path.as_ref();
    let bytes = chaosio::read_file(IoTarget::Checkpoint, path)?;
    let expected = std::fs::metadata(path)?.len();
    if (bytes.len() as u64) < expected {
        return Err(TensorError::Io {
            detail: format!(
                "short read on {}: got {} of {expected} bytes; retry",
                path.display(),
                bytes.len()
            ),
        });
    }
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::xavier;

    fn store() -> ParamStore {
        let mut p = ParamStore::new();
        p.register("layer0/w", xavier(8, 4, 1));
        p.register("layer0/b", Matrix::zeros(1, 4));
        p.register("layer1/w", xavier(4, 2, 2));
        p
    }

    fn tiny_store() -> ParamStore {
        let mut p = ParamStore::new();
        p.register("w", xavier(2, 2, 9));
        p.register("b", Matrix::zeros(1, 2));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = store();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        let mut names: Vec<&str> = loaded.names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["layer0/b", "layer0/w", "layer1/w"]);
        for name in names {
            assert_eq!(loaded.get(name), original.get(name), "{name}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&b"NOTACKPTxxxxxxxxxxxx"[..]).unwrap_err();
        assert!(matches!(err, TensorError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn v1_files_rejected_with_explanation() {
        let mut buf = b"GTCKPT01".to_vec();
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = load(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("GTCKPT01"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.gt");
        let original = store();
        save_file(&original, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.get("layer1/w"), original.get("layer1/w"));
        assert!(
            !tmp_path(&path).exists(),
            "temporary staging file left behind"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deterministic_bytes() {
        assert_eq!(to_bytes(&store()), to_bytes(&store()));
    }

    /// The trap `image_crc` exists to avoid: CRC-32 of a full
    /// self-checksummed image is the same residue constant for EVERY image,
    /// so it distinguishes nothing. The body fingerprint does.
    #[test]
    fn image_crc_distinguishes_images_where_whole_file_crc_cannot() {
        let (a, b) = (to_bytes(&store()), to_bytes(&tiny_store()));
        assert_eq!(crc32(&a), 0x2144_DF1C, "CRC-32 residue");
        assert_eq!(crc32(&a), crc32(&b), "whole-file CRC is constant");
        assert_ne!(image_crc(&a), image_crc(&b));
        assert_eq!(image_crc(&a), image_crc(&to_bytes(&store())));
    }

    /// The byte-level corruption sweep: truncate at every length and flip a
    /// bit at every offset of a small checkpoint; `load` must return a typed
    /// error every time — never panic, never over-allocate, never return
    /// wrong parameters (the CRC catches every single-byte change).
    #[test]
    fn corruption_sweep_truncate_and_flip_every_byte() {
        let bytes = to_bytes(&tiny_store());
        for len in 0..bytes.len() {
            let err = from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, TensorError::Corrupt { .. }),
                "truncation at {len}: {err:?}"
            );
        }
        for i in 0..bytes.len() {
            let mut copy = bytes.clone();
            copy[i] ^= 0x40;
            let err = from_bytes(&copy).unwrap_err();
            assert!(
                matches!(err, TensorError::Corrupt { .. }),
                "flip at {i}: {err:?}"
            );
        }
    }

    /// A header that claims astronomically large dimensions on a tiny file
    /// must be rejected by the remaining-bytes bound, not drive a huge
    /// `Vec` reservation (the original code's allocation bomb).
    #[test]
    fn allocation_bomb_header_is_rejected_cheaply() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes()); // one tensor
        buf.extend_from_slice(&1u32.to_le_bytes()); // name "w"
        buf.push(b'w');
        buf.extend_from_slice(&(1u64 << 40).to_le_bytes()); // rows: 1 TiB-ish
        buf.extend_from_slice(&8u64.to_le_bytes()); // cols
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        let err = from_bytes(&buf).unwrap_err();
        assert!(matches!(err, TensorError::Corrupt { .. }), "{err:?}");
        // And with an overflowing rows*cols product:
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'w');
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert!(from_bytes(&buf).is_err());
    }

    /// Regression for the pre-atomic `save_file`, which `File::create`d the
    /// destination (truncating it) before writing: simulate a writer killed
    /// at every point while saving checkpoint B — the staged temp file holds
    /// the torn bytes, the destination still holds checkpoint A, and A loads.
    #[test]
    fn killed_mid_save_preserves_previous_checkpoint() {
        let dir = std::env::temp_dir().join("gt_ckpt_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.gt");
        let a = tiny_store();
        save_file(&a, &path).unwrap();
        let a_bytes = to_bytes(&a);

        let mut b = store();
        b.register("extra", xavier(3, 3, 5));
        let b_bytes = to_bytes(&b);
        for cut in 0..b_bytes.len() {
            // A crash mid-save leaves a torn temp sibling and nothing else.
            std::fs::write(tmp_path(&path), &b_bytes[..cut]).unwrap();
            let loaded = load_file(&path).expect("old checkpoint must survive");
            assert_eq!(to_bytes(&loaded), a_bytes, "cut at {cut}");
        }
        // The torn temp never parses as a checkpoint either.
        assert!(load_file(tmp_path(&path)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
