//! Parameter checkpointing: save/load a [`ParamStore`] to a compact,
//! self-describing binary format (magic + version + per-tensor records).
//!
//! Enables the standard train → checkpoint → resume/serve workflow a
//! downstream user of the framework expects.

use crate::dense::Matrix;
use crate::dfg::ParamStore;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GTCKPT01";

/// Serialize every parameter to `writer`.
pub fn save<W: Write>(params: &ParamStore, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let mut names: Vec<&str> = params.names().collect();
    names.sort_unstable(); // deterministic file layout
    writer.write_all(&(names.len() as u64).to_le_bytes())?;
    for name in names {
        let m = params.get(name);
        let bytes = name.as_bytes();
        writer.write_all(&(bytes.len() as u32).to_le_bytes())?;
        writer.write_all(bytes)?;
        writer.write_all(&(m.rows() as u64).to_le_bytes())?;
        writer.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &v in m.data() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize parameters from `reader` into a fresh store.
pub fn load<R: Read>(mut reader: R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a GraphTensor checkpoint (bad magic)",
        ));
    }
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u64buf)?;
    let count = u64::from_le_bytes(u64buf);
    let mut params = ParamStore::new();
    for _ in 0..count {
        let mut u32buf = [0u8; 4];
        reader.read_exact(&mut u32buf)?;
        let name_len = u32::from_le_bytes(u32buf) as usize;
        if name_len > 4096 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unreasonable parameter-name length",
            ));
        }
        let mut name_bytes = vec![0u8; name_len];
        reader.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        reader.read_exact(&mut u64buf)?;
        let rows = u64::from_le_bytes(u64buf) as usize;
        reader.read_exact(&mut u64buf)?;
        let cols = u64::from_le_bytes(u64buf) as usize;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tensor too large"))?;
        let mut data = Vec::with_capacity(len);
        let mut f32buf = [0u8; 4];
        for _ in 0..len {
            reader.read_exact(&mut f32buf)?;
            data.push(f32::from_le_bytes(f32buf));
        }
        params.register(name, Matrix::from_vec(rows, cols, data));
    }
    Ok(params)
}

/// Save to a file path.
pub fn save_file(params: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    save(params, io::BufWriter::new(file))
}

/// Load from a file path.
pub fn load_file(path: impl AsRef<Path>) -> io::Result<ParamStore> {
    let file = std::fs::File::open(path)?;
    load(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::xavier;

    fn store() -> ParamStore {
        let mut p = ParamStore::new();
        p.register("layer0/w", xavier(8, 4, 1));
        p.register("layer0/b", Matrix::zeros(1, 4));
        p.register("layer1/w", xavier(4, 2, 2));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let original = store();
        let mut buf = Vec::new();
        save(&original, &mut buf).unwrap();
        let loaded = load(buf.as_slice()).unwrap();
        let mut names: Vec<&str> = loaded.names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["layer0/b", "layer0/w", "layer1/w"]);
        for name in names {
            assert_eq!(loaded.get(name), original.get(name), "{name}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&b"NOTACKPT"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let mut buf = Vec::new();
        save(&store(), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.gt");
        let original = store();
        save_file(&original, &path).unwrap();
        let loaded = load_file(&path).unwrap();
        assert_eq!(loaded.get("layer1/w"), original.get("layer1/w"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deterministic_bytes() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        save(&store(), &mut a).unwrap();
        save(&store(), &mut b).unwrap();
        assert_eq!(a, b);
    }
}
