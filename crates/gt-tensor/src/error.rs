//! Typed errors for the tensor substrate.
//!
//! Model-wiring mistakes (an unregistered parameter, a missing input slot,
//! a graph with no output) used to abort through `panic!`/`expect`. The
//! serving supervisor needs them as values so a bad model configuration can
//! be reported per batch instead of killing the process; the panicking
//! accessors now delegate to the `try_*` variants.

/// A tensor-substrate failure, as a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A DFG op referenced a parameter name never registered in the store.
    MissingParam {
        /// The unregistered parameter name.
        name: String,
    },
    /// A DFG execution was given fewer input matrices than the graph's
    /// highest live `Input(slot)` node requires.
    MissingInput {
        /// The unfed input slot.
        slot: usize,
    },
    /// The DFG's output node was never set.
    OutputUnset,
    /// The least-squares normal matrix was singular (fewer independent
    /// samples than coefficients) — no unique solution exists.
    SingularSystem,
    /// A checkpoint file failed validation: wrong magic, CRC mismatch,
    /// truncation, or a header whose claimed sizes exceed the bytes
    /// actually present. Loading never allocates for a size the file
    /// cannot back, so a corrupt header cannot OOM the process.
    Corrupt {
        /// What failed to validate.
        detail: String,
    },
    /// An underlying I/O operation failed (message of the `std::io::Error`;
    /// kept as a string so the error type stays `Clone + Eq`).
    Io {
        /// The I/O error's message.
        detail: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::MissingParam { name } => write!(f, "unknown parameter {name:?}"),
            TensorError::MissingInput { slot } => write!(f, "missing input slot {slot}"),
            TensorError::OutputUnset => write!(f, "output not set"),
            TensorError::SingularSystem => {
                write!(f, "singular least-squares system (rank-deficient samples)")
            }
            TensorError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            TensorError::Io { detail } => write!(f, "i/o error: {detail}"),
        }
    }
}

impl std::error::Error for TensorError {}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TensorError::MissingParam {
            name: "w".to_string()
        }
        .to_string()
        .contains("\"w\""));
        assert!(TensorError::MissingInput { slot: 2 }
            .to_string()
            .contains("2"));
        assert_eq!(TensorError::OutputUnset.to_string(), "output not set");
    }
}
