//! Cross-crate integration tests: the full stack from dataset generation
//! through preprocessing, every framework's training path, and the claims
//! that bind them together.

use graphtensor::prelude::*;
use graphtensor::sim::Phase;

fn sampler() -> SamplerConfig {
    SamplerConfig {
        fanout: 5,
        layers: 2,
        seed: 77,
        ..Default::default()
    }
}

/// Every framework trains the same batch to the same loss — the substrate
/// guarantees numerics are strategy-independent.
#[test]
fn all_eight_frameworks_agree_numerically() {
    let data = GraphData::synthetic(400, 4000, 24, 4, 5);
    let batch: Vec<u32> = (0..50).collect();
    let model = gcn(2, 4);

    let mut reference = GraphTensor::new(GtVariant::Base, model.clone(), SystemSpec::tiny());
    reference.sampler = sampler();
    let want = reference.train_batch(&data, &batch).loss;

    for kind in [
        BaselineKind::Pyg,
        BaselineKind::PygMt,
        BaselineKind::Dgl,
        BaselineKind::GnnAdvisor,
        BaselineKind::Salient,
    ] {
        let mut b = Baseline::new(kind, model.clone(), SystemSpec::tiny());
        b.sampler = sampler();
        let got = b.train_batch(&data, &batch).loss;
        assert!((got - want).abs() < 1e-5, "{kind:?}: {got} != {want}");
    }
    for variant in [GtVariant::Dynamic, GtVariant::Prepro] {
        let mut t = GraphTensor::new(variant, model.clone(), SystemSpec::tiny());
        t.sampler = sampler();
        let got = t.train_batch(&data, &batch).loss;
        assert!((got - want).abs() < 1e-4, "{variant:?}: {got} != {want}");
    }
}

/// Training is deterministic end to end: same seeds → identical losses.
#[test]
fn training_is_bit_reproducible() {
    let run = || {
        let data = GraphData::synthetic(300, 3000, 16, 3, 9);
        let mut t = GraphTensor::new(GtVariant::Prepro, gcn(2, 3), SystemSpec::tiny());
        t.sampler = sampler();
        let mut losses = Vec::new();
        for b in BatchIter::new(300, 60, 1) {
            losses.push(t.train_batch(&data, &b).loss);
        }
        losses
    };
    assert_eq!(run(), run());
}

/// The three GraphTensor variants keep their paper-ordering on a
/// heavy-feature workload: Dynamic ≤ Base GPU time; Prepro ≤ Dynamic
/// preprocessing time.
#[test]
fn variant_ordering_on_heavy_features() {
    let spec = gt_datasets::by_name("gowalla").unwrap();
    let data = spec.build(Scale::Test, 5);
    let batch: Vec<u32> = (0..60.min(data.num_vertices() as u32)).collect();
    let model = gcn(2, spec.out_dim);

    let mut base = GraphTensor::new(GtVariant::Base, model.clone(), SystemSpec::paper_testbed());
    base.sampler = sampler();
    let rb = base.train_batch(&data, &batch);

    let mut dynamic = GraphTensor::new(
        GtVariant::Dynamic,
        model.clone(),
        SystemSpec::paper_testbed(),
    );
    dynamic.sampler = sampler();
    for _ in 0..3 {
        dynamic.train_batch(&data, &batch);
    }
    let rd = dynamic.train_batch(&data, &batch);

    let mut prepro = GraphTensor::new(
        GtVariant::Prepro,
        model.clone(),
        SystemSpec::paper_testbed(),
    );
    prepro.sampler = sampler();
    for _ in 0..3 {
        prepro.train_batch(&data, &batch);
    }
    let rp = prepro.train_batch(&data, &batch);

    assert!(
        rd.gpu_us() <= rb.gpu_us() * 1.01,
        "Dynamic {} > Base {}",
        rd.gpu_us(),
        rb.gpu_us()
    );
    assert!(
        rp.prepro_us() <= rd.prepro_us(),
        "Prepro {} > Dynamic {}",
        rp.prepro_us(),
        rd.prepro_us()
    );
}

/// NAPA's headline property: zero bytes of sparse→dense conversion and
/// format translation, on both models.
#[test]
fn napa_has_no_conversion_overhead() {
    let data = GraphData::synthetic(300, 3000, 16, 2, 1);
    let batch: Vec<u32> = (0..40).collect();
    for model in [gcn(2, 2), ngcf(2, 2)] {
        let mut t = GraphTensor::new(GtVariant::Base, model, SystemSpec::tiny());
        t.sampler = sampler();
        let r = t.train_batch(&data, &batch);
        assert_eq!(r.phase_us(Phase::Sparse2Dense), 0.0);
        assert_eq!(r.phase_us(Phase::FormatTranslation), 0.0);
        assert_eq!(r.sim.phase_stats(Phase::Sparse2Dense).alloc_bytes, 0);
    }
}

/// Dataset recipes × frameworks: one batch of every Table-II workload
/// trains without panics or NaNs on the full system.
#[test]
fn every_dataset_trains_one_batch() {
    for spec in gt_datasets::registry() {
        let data = spec.build(Scale::Test, 3);
        let n = 30.min(data.num_vertices());
        let batch: Vec<u32> = (0..n as u32).collect();
        let mut t = GraphTensor::new(
            GtVariant::Prepro,
            gcn(2, spec.out_dim),
            SystemSpec::paper_testbed(),
        );
        t.sampler = sampler();
        let r = t.train_batch(&data, &batch);
        assert!(r.loss.is_finite(), "{}: loss {}", spec.name, r.loss);
        assert!(r.gpu_us() > 0.0, "{}", spec.name);
        assert!(r.prepro_us() > 0.0, "{}", spec.name);
    }
}

/// The umbrella prelude is sufficient for the README quickstart.
#[test]
fn prelude_quickstart_compiles_and_learns() {
    let data = GraphData::synthetic_learnable(300, 2400, 16, 2, 7);
    let mut trainer = GraphTensor::new(
        GtVariant::Dynamic,
        gcn(2, data.num_classes),
        SystemSpec::tiny(),
    );
    trainer.sampler.fanout = 3;
    trainer.lr = 0.3;
    let losses = train_epochs(&mut trainer, &data, 5, 50, 1);
    assert!(losses.last().unwrap() < &losses[0]);
}

/// Checkpoint round-trip: a restored trainer scores batches identically.
#[test]
fn checkpoint_restore_preserves_predictions() {
    let data = GraphData::synthetic_learnable(200, 1600, 8, 2, 5);
    let mut t = GraphTensor::new(GtVariant::Dynamic, gcn(2, 2), SystemSpec::tiny());
    t.sampler = sampler();
    t.lr = 0.3;
    for b in BatchIter::new(200, 40, 1) {
        t.train_batch(&data, &b);
    }
    let mut buf = Vec::new();
    graphtensor::tensor::checkpoint::save(t.params(), &mut buf).unwrap();
    let restored = graphtensor::tensor::checkpoint::load(buf.as_slice()).unwrap();
    let mut served = GraphTensor::new(GtVariant::Dynamic, gcn(2, 2), SystemSpec::tiny());
    served.sampler = sampler();
    served.set_params(restored);
    let eval: Vec<u32> = (0..80).collect();
    let a = evaluate(&mut t, &data, &eval);
    let b = evaluate(&mut served, &data, &eval);
    assert!(
        (a - b).abs() < 1e-9,
        "restored accuracy {b} != original {a}"
    );
}

/// Full-graph mode matches the scalability story: small graphs train,
/// sampling covers what full-graph cannot.
#[test]
fn full_graph_mode_trains_small_graphs() {
    let data = GraphData::synthetic_learnable(150, 1200, 8, 2, 3);
    let mut t = GraphTensor::new(GtVariant::Base, gcn(2, 2), SystemSpec::tiny());
    t.lr = 0.5;
    let first = t.train_full_graph(&data).loss;
    let mut last = first;
    for _ in 0..15 {
        last = t.train_full_graph(&data).loss;
    }
    assert!(last < first);
    assert!(t.train_full_graph(&data).oom.is_none());
}
