//! Facade-level tests of the modeling substrate: device specs, preprocessing
//! schedules, and the invariants the evaluation figures rely on.

use graphtensor::core::prepro::run_prepro;
use graphtensor::core::scheduler::schedule_prepro;
use graphtensor::prelude::*;
use graphtensor::sim::{DeviceSpec, Phase};

fn prepro_work() -> graphtensor::core::prepro::PreproWork {
    let data = GraphData::synthetic(2_000, 30_000, 128, 4, 9);
    let batch: Vec<u32> = (0..200).collect();
    run_prepro(
        &data,
        &batch,
        &SamplerConfig {
            fanout: 10,
            layers: 2,
            seed: 4,
            ..Default::default()
        },
    )
    .work
}

/// The four strategies keep their paper ordering on a realistic batch:
/// relaxed-pipelined ≤ naive-pipelined and ≤ serial; pinned ≤ pageable.
#[test]
fn strategy_ordering() {
    let work = prepro_work();
    let sys = SystemSpec::paper_testbed();
    let serial = schedule_prepro(&work, &sys, PreproStrategy::Serial).makespan_us;
    let pinned = schedule_prepro(&work, &sys, PreproStrategy::SerialPinned).makespan_us;
    let naive = schedule_prepro(&work, &sys, PreproStrategy::Pipelined).makespan_us;
    let relaxed = schedule_prepro(&work, &sys, PreproStrategy::PipelinedRelaxed).makespan_us;
    assert!(pinned <= serial, "pinned {pinned} > pageable {serial}");
    assert!(relaxed <= naive, "relaxed {relaxed} > naive {naive}");
    assert!(relaxed <= serial, "relaxed {relaxed} > serial {serial}");
}

/// More host cores never slow preprocessing down, under any strategy.
#[test]
fn host_cores_monotone() {
    let work = prepro_work();
    for strategy in [
        PreproStrategy::Serial,
        PreproStrategy::Pipelined,
        PreproStrategy::PipelinedRelaxed,
    ] {
        let mut sys = SystemSpec::paper_testbed();
        sys.host.cores = 2;
        let few = schedule_prepro(&work, &sys, strategy).makespan_us;
        sys.host.cores = 24;
        let many = schedule_prepro(&work, &sys, strategy).makespan_us;
        assert!(
            many <= few + 1e-6,
            "{strategy:?}: 24 cores ({many}) slower than 2 ({few})"
        );
    }
}

/// A faster PCIe link shortens every schedule's transfer phase.
#[test]
fn pcie_bandwidth_matters() {
    let work = prepro_work();
    let mut sys = SystemSpec::paper_testbed();
    let slow = schedule_prepro(&work, &sys, PreproStrategy::SerialPinned);
    sys.pcie.pinned_bandwidth *= 4.0;
    let fast = schedule_prepro(&work, &sys, PreproStrategy::SerialPinned);
    assert!(fast.phase_busy_us(Phase::Transfer) < slow.phase_busy_us(Phase::Transfer));
}

/// Device presets stay self-consistent.
#[test]
fn device_presets() {
    for dev in [
        DeviceSpec::rtx3090(),
        DeviceSpec::a100(),
        DeviceSpec::tiny(),
    ] {
        assert!(dev.num_sms > 0);
        assert!(dev.effective_bw_per_us(false) > dev.effective_bw_per_us(true));
        assert!(dev.device_mem_bytes > 0);
    }
    // The A100 out-bandwidths the 3090; the 3090 out-FLOPs the A100 (fp32).
    let (a, g) = (DeviceSpec::a100(), DeviceSpec::rtx3090());
    assert!(a.mem_bandwidth > g.mem_bandwidth);
    assert!(g.peak_flops > a.peak_flops);
}

/// The modeled batch report stays internally consistent across frameworks.
#[test]
fn batch_report_consistency() {
    let data = GraphData::synthetic(500, 6000, 32, 4, 9);
    let batch: Vec<u32> = (0..80).collect();
    let mut t = GraphTensor::new(GtVariant::Prepro, gcn(2, 4), SystemSpec::paper_testbed());
    t.sampler = SamplerConfig {
        fanout: 8,
        layers: 2,
        seed: 6,
        ..Default::default()
    };
    let r = t.train_batch(&data, &batch);
    // Decomposition sums to the total.
    let total: f64 = r.sim.decomposition().iter().map(|(_, us)| us).sum();
    assert!((total - r.sim.total_us()).abs() < 1e-6);
    // GPU time covers every non-prepro phase.
    assert!(r.gpu_us() <= r.sim.total_us() + 1e-9);
    // Peak memory at least covers the gathered features.
    assert!(r.sim.memory.peak() >= (r.num_nodes * data.feature_dim() * 4) as u64);
}
